(** Session-time distributions for the continuous-churn driver.

    A node's session time is the virtual time between its arrival and its
    departure. The churn literature (and the stochastic-analysis companion
    paper, PAPERS.md) works with three shapes: memoryless (exponential),
    heavy-tailed (Pareto — measured P2P session times are famously
    heavy-tailed) and deterministic (fixed — the adversarial regular churn of
    the stochastic model). All sampling is inverse-CDF over a seeded
    {!Ntcu_std.Rng.t}, so a sequence of draws is a pure function of the
    seed. *)

type kind = Exponential | Pareto | Fixed

val kind_name : kind -> string
val kind_of_name : string -> kind option
(** ["exponential" | "pareto" | "fixed"] (also accepts ["exp"]). *)

val all_kinds : kind list

type dist =
  | Exp of { mean : float }
  | Par of { alpha : float; xmin : float }
      (** Density [~ x^-(alpha+1)] for [x >= xmin]; finite mean requires
          [alpha > 1]. *)
  | Fix of float

val default_alpha : float
(** Pareto shape used by {!make}: [2.5]. Heavy-tailed but with finite
    variance, so empirical means of seeded sample runs converge fast enough
    to assert tolerances on (measured session traces are often fit with
    [alpha] between 1.5 and 2.5). *)

val make : kind -> mean:float -> dist
(** The distribution of the given shape with the given mean:
    [Exp {mean}], [Par {alpha = default_alpha; xmin = mean (alpha-1)/alpha}]
    or [Fix mean].
    @raise Invalid_argument if [mean <= 0.]. *)

val mean : dist -> float
(** Analytic mean ([infinity] for a Pareto with [alpha <= 1]). *)

val kind : dist -> kind

val sample : dist -> Ntcu_std.Rng.t -> float
(** One session time, strictly positive. *)

val pp : dist Fmt.t
