module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Rng = Ntcu_std.Rng
module Engine = Ntcu_sim.Engine
module Arrivals = Ntcu_sim.Arrivals
module Latency = Ntcu_sim.Latency
module Network = Ntcu_core.Network
module Node = Ntcu_core.Node
module Stats = Ntcu_core.Stats
module Message = Ntcu_core.Message
module Table = Ntcu_table.Table
module Check = Ntcu_table.Check
module Route = Ntcu_routing.Route
module Leave_protocol = Ntcu_extensions.Leave_protocol
module Online_repair = Ntcu_extensions.Online_repair
module Workload = Ntcu_harness.Workload
module Experiment = Ntcu_harness.Experiment
module Json = Ntcu_harness.Report.Json

type config = {
  b : int;
  d : int;
  n : int;
  duration : float;
  half_life : float;
  dist : Session.kind;
  crash_fraction : float;
  loss : float;
  sample_every : float;
  maintenance_every : float;
  lookups_per_sample : int;
  seed : int;
  debug_timers : bool;
}

let default =
  {
    b = 16;
    d = 8;
    n = 1000;
    duration = 14_400_000.;
    half_life = 3_600_000.;
    dist = Session.Exponential;
    crash_fraction = 0.5;
    loss = 0.01;
    sample_every = 60_000.;
    maintenance_every = 30_000.;
    lookups_per_sample = 64;
    seed = 1;
    debug_timers = false;
  }

let smoke =
  {
    default with
    n = 60;
    duration = 120_000.;
    half_life = 60_000.;
    sample_every = 10_000.;
    maintenance_every = 5_000.;
    lookups_per_sample = 16;
    debug_timers = true;
  }

let ln2 = Float.log 2.

let session_mean cfg = cfg.half_life /. ln2

let arrival_rate cfg = float_of_int cfg.n /. session_mean cfg

(* Transport constants of the churn regime. [rto] clears a full round trip of
   the 1-100 ms latency draw; 5 retries keep the worst-case suspicion delay
   (the detection budget below) under 16 s of virtual time, so the repair
   process can plausibly race an hours-scale half-life. *)
let rto = 250.

let backoff = 2.

let max_retries = 5

let detection_budget _cfg =
  rto *. ((backoff ** float_of_int (max_retries + 1)) -. 1.) /. (backoff -. 1.)

let repair_latency cfg = cfg.maintenance_every +. detection_budget cfg

let predicted_half_life cfg =
  repair_latency cfg *. (Float.log (float_of_int cfg.n) /. ln2)

type sample = {
  t : float;
  live : int;
  s_nodes : int;
  joining : int;
  entries : int;
  violations : int;
  transitional : int;
  holes : int;
  debt : float;
  unscrubbed : int;
  lookups : int;
  lookups_ok : int;
  window_msgs : int;
  window_bytes : int;
  window_retrans : int;
  suspected_live : int;
  joins_started : int;
  joins_skipped : int;
  leaves : int;
  crashes : int;
  aborted : int;
}

let violation_cap = 5000

type summary = {
  samples : int;
  end_time : float;
  mean_live : float;
  min_live : int;
  max_live : int;
  mean_joining : float;
  mean_violations : float;
  max_violations : int;
  mean_holes : float;
  max_holes : int;
  mean_debt : float;
  max_debt : float;
  lookup_success : float;
  msgs_per_node_s : float;
  suspected_live_max : int;
  tail_mean_live : float;
  tail_mean_joining : float;
  tail_lookup_success : float;
  tail_mean_violations : float;
  tail_mean_holes : float;
  tail_stale_fraction : float;
  joins_started : int;
  joins_skipped : int;
  leaves : int;
  crashes : int;
  aborted : int;
  stuck_reaped : int;
  departures_cancelled : int;
  final_live : int;
  final_in_system : bool;
  final_violations : int;
  final_holes : int;
  final_consistent : bool;
  drained : bool;
  events : int;
  leave_report : Leave_protocol.report;
  repair_report : Online_repair.report;
}

type result = { config : config; series : sample list; summary : summary }

type t = {
  cfg : config;
  p : Params.t;
  dist : Session.dist;
  network : Network.t;
  lp : Leave_protocol.t;
  repair : Online_repair.t;
  seeds : Id.t list;
  id_rng : Rng.t;  (* identities, gateways, leave-vs-crash draws *)
  arrival_rng : Rng.t;  (* Poisson interarrival times *)
  session_rng : Rng.t;  (* session-time draws *)
  lookup_rng : Rng.t;  (* sampled lookup pairs *)
  departed_at : float Id.Tbl.t;  (* departure time of every departed id *)
  mutable dep_handles : Engine.handle list;
  mutable dep_pending : int;
  mutable sources : Arrivals.t list;
  mutable stopped : bool;
  mutable joins_started : int;
  mutable joins_skipped : int;
  mutable leaves : int;
  mutable crashes : int;
  mutable aborted : int;
  mutable stuck_reaped : int;
  mutable departures_cancelled : int;
  mutable samples_rev : sample list;
  mutable last_window : Stats.window;
  mutable finished : bool;
}

let net st = st.network

let initial st = st.seeds

let dead st id = (not (Network.mem st.network id)) || Network.is_failed st.network id

let members st =
  List.filter
    (fun id ->
      match Network.node st.network id with
      | Some nd -> Node.status_equal (Node.status nd) Node.In_system
      | None -> false)
    (Network.live_ids st.network)

(* Every (holder, victim) pair where a live table's primary entry names a
   departed node, one per victim per holder, in registration-then-table
   order — a deterministic scan. *)
let dead_references st =
  let refs = ref [] in
  List.iter
    (fun holder ->
      match Network.node st.network holder with
      | None -> ()
      | Some nd ->
        let seen = Id.Tbl.create 8 in
        Table.iter (Node.table nd) (fun ~level ~digit id state ->
            if
              (not (Id.equal id holder))
              && dead st id
              && not (Id.Tbl.mem seen id)
            then begin
              Id.Tbl.add seen id ();
              refs := (holder, id, level, digit, state) :: !refs
            end))
    (Network.live_ids st.network);
  List.rev !refs

(* One liveness probe through the reliable transport, standing in for the
   holder's periodic heartbeat: the retry budget exhausts against the dead
   victim and the holder's [on_suspect] scrubs and refills its table (plus,
   on the first report, the network-wide online-repair dissemination). *)
let probe st (holder, victim, level, digit, state) =
  Network.inject st.network ~src:holder
    [ { Node.dst = victim; msg = Message.Rv_ngh_noti { level; digit; recorded = state } } ]

let reap st refs =
  let referenced = Id.Tbl.create 16 in
  List.iter (fun (_, v, _, _, _) -> Id.Tbl.replace referenced v ()) refs;
  List.iter
    (fun fid ->
      if not (Id.Tbl.mem referenced fid) then Network.remove st.network fid)
    (Network.failed_ids st.network)

let maintenance st =
  let refs = dead_references st in
  List.iter (probe st) refs;
  reap st refs

let take_sample st ~now =
  let cfg = st.cfg in
  let network = st.network in
  let live_ids = Network.live_ids network in
  let live = List.length live_ids in
  let member_ids = members st in
  let s_nodes = List.length member_ids in
  let joining = live - s_nodes in
  let tables =
    List.map (fun id -> Node.table (Network.node_exn network id)) member_ids
  in
  let entries = List.fold_left (fun a tb -> a + Table.filled_count tb) 0 tables in
  let viols = Check.violations ~limit:violation_cap tables in
  let fnws = ref 0 and transitional = ref 0 and holes = ref 0 in
  let debt = ref 0. in
  let dead_seen = Id.Tbl.create 16 in
  List.iter
    (function
      | Check.False_negative _ | Check.Wrong_suffix _ -> incr fnws
      | Check.Dangling { stored; _ } ->
        if Network.mem network stored && not (Network.is_failed network stored)
        then incr transitional (* a live mid-join node: repair in flight *)
        else begin
          incr holes;
          if not (Id.Tbl.mem dead_seen stored) then Id.Tbl.replace dead_seen stored ();
          let age =
            match Id.Tbl.find_opt st.departed_at stored with
            | Some at -> now -. at
            | None -> 0.
          in
          debt := !debt +. age
        end)
    viols;
  let lookups = if s_nodes >= 2 then cfg.lookups_per_sample else 0 in
  let lookups_ok = ref 0 in
  if lookups > 0 then begin
    let arr = Array.of_list member_ids in
    let alive id = Network.mem network id && not (Network.is_failed network id) in
    let lookup id = Option.map Node.table (Network.node network id) in
    for _ = 1 to lookups do
      let src = Rng.pick st.lookup_rng arr in
      let dst = Rng.pick st.lookup_rng arr in
      match Route.route_resilient ~lookup ~alive ~src ~dst with
      | Ok _ -> incr lookups_ok
      | Error _ -> ()
    done
  end;
  let g = Network.global_stats network in
  let w = Stats.since g st.last_window in
  st.last_window <- Stats.window g;
  let suspected_live =
    List.fold_left
      (fun a id -> if Network.is_suspected network id then a + 1 else a)
      0 live_ids
  in
  let s : sample =
    {
      t = now;
      live;
      s_nodes;
      joining;
      entries;
      violations = !fnws;
      transitional = !transitional;
      holes = !holes;
      debt = !debt;
      unscrubbed = Id.Tbl.length dead_seen;
      lookups;
      lookups_ok = !lookups_ok;
      window_msgs = w.Stats.w_sent;
      window_bytes = w.Stats.w_bytes_sent;
      window_retrans = w.Stats.w_retransmissions;
      suspected_live;
      joins_started = st.joins_started;
      joins_skipped = st.joins_skipped;
      leaves = st.leaves;
      crashes = st.crashes;
      aborted = st.aborted;
    }
  in
  st.samples_rev <- s :: st.samples_rev

let schedule_session st id =
  (* Draw before acting, in a fixed order, so the session and coin streams
     are pure functions of the seed whatever the network does. *)
  let session = Session.sample st.dist st.session_rng in
  let crash = Rng.float st.id_rng 1. < st.cfg.crash_fraction in
  let engine = Network.engine st.network in
  st.dep_pending <- st.dep_pending + 1;
  let h =
    Engine.schedule_cancellable engine ~delay:session (fun () ->
        st.dep_pending <- st.dep_pending - 1;
        if (not st.stopped) && not (dead st id) then begin
          let now = Engine.now engine in
          let nd = Network.node_exn st.network id in
          if Node.status_equal (Node.status nd) Node.In_system then
            if crash then begin
              st.crashes <- st.crashes + 1;
              Id.Tbl.replace st.departed_at id now;
              Network.fail st.network id
            end
            else begin
              st.leaves <- st.leaves + 1;
              Id.Tbl.replace st.departed_at id now;
              Leave_protocol.request_leave st.lp id
            end
          else begin
            (* Still mid-join: a polite leave needs an installed table, so a
               departing joiner can only crash. *)
            st.aborted <- st.aborted + 1;
            Id.Tbl.replace st.departed_at id now;
            Network.fail st.network id
          end
        end)
  in
  st.dep_handles <- h :: st.dep_handles

let rec fresh_id st =
  let id = Id.random st.id_rng st.p in
  (* Never reuse a departed identity: a stale reference to the old
     incarnation must stay detectably dead. *)
  if Network.mem st.network id || Id.Tbl.mem st.departed_at id then fresh_id st
  else id

let do_join st =
  match members st with
  | [] -> st.joins_skipped <- st.joins_skipped + 1
  | ms ->
    let gateway = Rng.pick st.id_rng (Array.of_list ms) in
    let id = fresh_id st in
    Network.start_join st.network ~id ~gateway ();
    st.joins_started <- st.joins_started + 1;
    schedule_session st id

let stop_window st =
  let now = Engine.now (Network.engine st.network) in
  take_sample st ~now;
  List.iter Arrivals.stop st.sources;
  st.stopped <- true;
  st.departures_cancelled <- st.dep_pending;
  let engine = Network.engine st.network in
  List.iter (fun h -> Engine.cancel engine h) st.dep_handles;
  st.dep_handles <- []

let prepare ?(record_trace = false) cfg =
  if cfg.n < 2 then invalid_arg "Churn.prepare: n must be >= 2";
  if cfg.duration <= 0. then invalid_arg "Churn.prepare: duration must be positive";
  if cfg.half_life <= 0. then invalid_arg "Churn.prepare: half_life must be positive";
  if cfg.sample_every <= 0. || cfg.maintenance_every <= 0. then
    invalid_arg "Churn.prepare: periods must be positive";
  if cfg.crash_fraction < 0. || cfg.crash_fraction > 1. then
    invalid_arg "Churn.prepare: crash_fraction must be in [0, 1]";
  let p = Params.make ~b:cfg.b ~d:cfg.d in
  let id_rng = Rng.create cfg.seed in
  let seeds = Workload.distinct_ids id_rng p ~n:cfg.n in
  let latency = Latency.uniform ~seed:(cfg.seed + 1) ~lo:1. ~hi:100. in
  let reliability =
    { Network.default_reliability with rto; backoff; max_retries; seed = cfg.seed + 4 }
  in
  let network =
    Network.create ~latency ~record_trace ~loss:(cfg.loss, cfg.seed + 3) ~reliability p
  in
  let engine = Network.engine network in
  if cfg.debug_timers then Engine.set_debug_timers engine true;
  let repair = Online_repair.attach network in
  let lp =
    Leave_protocol.create
      ~latency:(Latency.uniform ~seed:(cfg.seed + 5) ~lo:1. ~hi:10.)
      network
  in
  Network.seed_consistent network ~seed:(cfg.seed + 2) seeds;
  let st =
    {
      cfg;
      p;
      dist = Session.make cfg.dist ~mean:(session_mean cfg);
      network;
      lp;
      repair;
      seeds;
      id_rng;
      arrival_rng = Rng.create (cfg.seed + 6);
      session_rng = Rng.create (cfg.seed + 7);
      lookup_rng = Rng.create (cfg.seed + 8);
      departed_at = Id.Tbl.create 256;
      dep_handles = [];
      dep_pending = 0;
      sources = [];
      stopped = false;
      joins_started = 0;
      joins_skipped = 0;
      leaves = 0;
      crashes = 0;
      aborted = 0;
      stuck_reaped = 0;
      departures_cancelled = 0;
      samples_rev = [];
      last_window = Stats.window (Network.global_stats network);
      finished = false;
    }
  in
  (* The initial members hold sessions too. Full sessions are drawn at time
     zero rather than equilibrium residual lives — exact for the memoryless
     exponential, a mild warmup bias for Pareto and fixed. *)
  List.iter (fun id -> schedule_session st id) seeds;
  let arrivals =
    Arrivals.start engine
      ~next:(Arrivals.poisson ~rate:(arrival_rate cfg) st.arrival_rng)
      (fun ~now:_ -> if not st.stopped then do_join st)
  in
  let maint =
    Arrivals.start engine ~first:cfg.maintenance_every
      ~next:(Arrivals.every cfg.maintenance_every)
      (fun ~now:_ -> if not st.stopped then maintenance st)
  in
  let sampler =
    Arrivals.start engine ~first:cfg.sample_every
      ~next:(Arrivals.every cfg.sample_every)
      (fun ~now -> if (not st.stopped) && now < cfg.duration then take_sample st ~now)
  in
  st.sources <- [ arrivals; maint; sampler ];
  (* The window-closing event. Scheduled before any source re-arms, so at a
     time tie it fires first, takes the last in-window sample itself and
     cancels the sources' pending events. *)
  Engine.schedule_at engine ~time:cfg.duration (fun () -> stop_window st);
  st

let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl

let summarize st ~final_live ~final_in_system ~final_violations ~final_holes ~drained =
  let network = st.network in
  let engine = Network.engine network in
  let samples = List.rev st.samples_rev in
  let k = List.length samples in
  let fk = float_of_int (max k 1) in
  let sumf f = List.fold_left (fun a s -> a +. f s) 0. samples in
  let sumi f = List.fold_left (fun a s -> a + f s) 0 samples in
  let maxi f = List.fold_left (fun a s -> max a (f s)) 0 samples in
  let maxf f = List.fold_left (fun a s -> Float.max a (f s)) 0. samples in
  let min_live =
    List.fold_left (fun a s -> min a s.live) (match samples with [] -> 0 | s :: _ -> s.live) samples
  in
  let tail = drop (k / 2) samples in
  let tk = float_of_int (max (List.length tail) 1) in
  let tsumf f = List.fold_left (fun a s -> a +. f s) 0. tail in
  let tsumi f = List.fold_left (fun a s -> a + f s) 0 tail in
  let pooled ok total = if total = 0 then 1.0 else float_of_int ok /. float_of_int total in
  let rate_sum, _ =
    List.fold_left
      (fun (acc, prev) s ->
        let dt = s.t -. prev in
        let r =
          if s.live > 0 && dt > 0. then
            float_of_int s.window_msgs /. float_of_int s.live /. (dt /. 1000.)
          else 0.
        in
        (acc +. r, s.t))
      (0., 0.) samples
  in
  let tail_entries = tsumi (fun s -> s.entries) in
  let tail_stale = tsumi (fun s -> s.violations + s.holes) in
  {
    samples = k;
    end_time = Engine.now engine;
    mean_live = sumf (fun s -> float_of_int s.live) /. fk;
    min_live;
    max_live = maxi (fun s -> s.live);
    mean_joining = sumf (fun s -> float_of_int s.joining) /. fk;
    mean_violations = sumf (fun s -> float_of_int s.violations) /. fk;
    max_violations = maxi (fun s -> s.violations);
    mean_holes = sumf (fun s -> float_of_int s.holes) /. fk;
    max_holes = maxi (fun s -> s.holes);
    mean_debt = sumf (fun s -> s.debt) /. fk;
    max_debt = maxf (fun s -> s.debt);
    lookup_success = pooled (sumi (fun s -> s.lookups_ok)) (sumi (fun s -> s.lookups));
    msgs_per_node_s = rate_sum /. fk;
    suspected_live_max = maxi (fun s -> s.suspected_live);
    tail_mean_live =
      (match tail with [] -> float_of_int final_live | _ -> tsumf (fun s -> float_of_int s.live) /. tk);
    tail_mean_joining = tsumf (fun s -> float_of_int s.joining) /. tk;
    tail_lookup_success = pooled (tsumi (fun s -> s.lookups_ok)) (tsumi (fun s -> s.lookups));
    tail_mean_violations = tsumf (fun s -> float_of_int s.violations) /. tk;
    tail_mean_holes = tsumf (fun s -> float_of_int s.holes) /. tk;
    tail_stale_fraction =
      (if tail_entries = 0 then 0. else float_of_int tail_stale /. float_of_int tail_entries);
    joins_started = st.joins_started;
    joins_skipped = st.joins_skipped;
    leaves = st.leaves;
    crashes = st.crashes;
    aborted = st.aborted;
    stuck_reaped = st.stuck_reaped;
    departures_cancelled = st.departures_cancelled;
    final_live;
    final_in_system;
    final_violations;
    final_holes;
    final_consistent = final_violations = 0 && final_holes = 0;
    drained;
    events = Network.messages_delivered network;
    leave_report = Leave_protocol.report st.lp;
    repair_report = Online_repair.report st.repair;
  }

let finish st =
  if st.finished then invalid_arg "Churn.finish: already finished";
  st.finished <- true;
  let network = st.network in
  (* Run the whole steady-state window (the stop event fires at [duration])
     and drain in-flight joins, leaves and repairs to quiescence. *)
  Network.run network;
  (* A joiner can wedge if its gateway died before the first reply —
     assumption (ii), which no protocol survives. A deployment would time the
     join out and retry; here the zombie is crashed and repaired away. *)
  List.iter
    (fun nd ->
      let id = Node.id nd in
      if Network.mem network id && not (Network.is_failed network id) then begin
        st.stuck_reaped <- st.stuck_reaped + 1;
        Id.Tbl.replace st.departed_at id (Engine.now (Network.engine network));
        Network.fail network id
      end)
    (Network.stuck_joiners network);
  (* Eventual detection for everything still dangling: probe, drain, repeat
     while a live table references a departed node (a refill can itself name
     a dead node, so iterate; the round cap only guards collapse states). *)
  let rec cleanup rounds =
    match dead_references st with
    | [] -> ()
    | _ when rounds >= 64 -> ()
    | refs ->
      List.iter (probe st) refs;
      Network.run network;
      cleanup (rounds + 1)
  in
  cleanup 0;
  reap st (dead_references st);
  let live_ids = Network.live_ids network in
  let final_live = List.length live_ids in
  let final_in_system =
    List.for_all
      (fun id ->
        Node.status_equal (Node.status (Network.node_exn network id)) Node.In_system)
      live_ids
  in
  let tables = List.map (fun id -> Node.table (Network.node_exn network id)) live_ids in
  let fviols = Check.violations ~limit:violation_cap tables in
  let final_violations, final_holes =
    List.fold_left
      (fun (v, h) viol ->
        match viol with
        | Check.False_negative _ | Check.Wrong_suffix _ -> (v + 1, h)
        | Check.Dangling _ -> (v, h + 1))
      (0, 0) fviols
  in
  let drained = Network.is_quiescent network in
  let summary =
    summarize st ~final_live ~final_in_system ~final_violations ~final_holes ~drained
  in
  { config = st.cfg; series = List.rev st.samples_rev; summary }

let run ?record_trace cfg = finish (prepare ?record_trace cfg)

let health cfg s =
  let n = float_of_int cfg.n in
  let r = [] in
  let r = if s.tail_mean_live < 0.75 *. n || s.tail_mean_live > 1.25 *. n then "size" :: r else r in
  let r = if s.tail_mean_joining > 0.25 *. n then "backlog" :: r else r in
  let r = if s.tail_lookup_success < 0.9 then "lookup" :: r else r in
  let r = if s.tail_stale_fraction > 0.02 then "stale" :: r else r in
  let r = if not (s.drained && s.final_in_system) then "liveness" :: r else r in
  List.rev r

let ok ?(claim = Experiment.Strict) result =
  let s = result.summary in
  let n = float_of_int result.config.n in
  let size_ok = s.tail_mean_live >= 0.75 *. n && s.tail_mean_live <= 1.25 *. n in
  let base = s.drained && s.final_in_system && s.final_live > 0 && size_ok in
  match claim with
  | Experiment.Strict -> base && s.final_consistent
  | Experiment.Best_effort -> base

type point = {
  p_half_life : float;
  p_seed : int;
  p_summary : summary;
  p_reasons : string list;
}

type sweep_result = {
  sweep_base : config;
  points : point list;
  tolerated : float option;
  collapse : float option;
  predicted : float;
}

let sweep pool ~base ~points =
  if points < 1 then invalid_arg "Churn.sweep: points must be >= 1";
  let cfgs =
    List.init points (fun i ->
        {
          base with
          half_life = base.half_life /. (2. ** float_of_int i);
          seed = base.seed + (97 * i);
        })
  in
  let pts =
    Ntcu_std.Parallel.map pool
      (fun cfg ->
        let r = run cfg in
        {
          p_half_life = cfg.half_life;
          p_seed = cfg.seed;
          p_summary = r.summary;
          p_reasons = health cfg r.summary;
        })
      cfgs
  in
  let rec split_prefix acc = function
    | p :: rest when List.is_empty p.p_reasons -> split_prefix (p :: acc) rest
    | rest -> (acc, rest)
  in
  let healthy_rev, remainder = split_prefix [] pts in
  let tolerated = match healthy_rev with [] -> None | p :: _ -> Some p.p_half_life in
  let collapse = match remainder with [] -> None | p :: _ -> Some p.p_half_life in
  { sweep_base = base; points = pts; tolerated; collapse; predicted = predicted_half_life base }

(* {1 JSON} *)

let config_json c =
  Json.Obj
    [
      ("b", Json.Int c.b);
      ("d", Json.Int c.d);
      ("n", Json.Int c.n);
      ("duration", Json.Float c.duration);
      ("half_life", Json.Float c.half_life);
      ("dist", Json.String (Session.kind_name c.dist));
      ("crash_fraction", Json.Float c.crash_fraction);
      ("loss", Json.Float c.loss);
      ("sample_every", Json.Float c.sample_every);
      ("maintenance_every", Json.Float c.maintenance_every);
      ("lookups_per_sample", Json.Int c.lookups_per_sample);
      ("seed", Json.Int c.seed);
      ("detection_budget", Json.Float (detection_budget c));
      ("repair_latency", Json.Float (repair_latency c));
      ("predicted_half_life", Json.Float (predicted_half_life c));
    ]

let sample_json s =
  Json.Obj
    [
      ("t", Json.Float s.t);
      ("live", Json.Int s.live);
      ("s_nodes", Json.Int s.s_nodes);
      ("joining", Json.Int s.joining);
      ("entries", Json.Int s.entries);
      ("violations", Json.Int s.violations);
      ("transitional", Json.Int s.transitional);
      ("holes", Json.Int s.holes);
      ("debt", Json.Float s.debt);
      ("unscrubbed", Json.Int s.unscrubbed);
      ("lookups", Json.Int s.lookups);
      ("lookups_ok", Json.Int s.lookups_ok);
      ("window_msgs", Json.Int s.window_msgs);
      ("window_bytes", Json.Int s.window_bytes);
      ("window_retrans", Json.Int s.window_retrans);
      ("suspected_live", Json.Int s.suspected_live);
      ("joins_started", Json.Int s.joins_started);
      ("joins_skipped", Json.Int s.joins_skipped);
      ("leaves", Json.Int s.leaves);
      ("crashes", Json.Int s.crashes);
      ("aborted", Json.Int s.aborted);
    ]

let leave_json (r : Leave_protocol.report) =
  Json.Obj
    [
      ("departed", Json.Int r.departed);
      ("messages", Json.Int r.messages);
      ("installed", Json.Int r.installed);
      ("fallback_local", Json.Int r.fallback_local);
      ("fallback_flood", Json.Int r.fallback_flood);
      ("emptied", Json.Int r.emptied);
    ]

let repair_json (r : Online_repair.report) =
  Json.Obj
    [
      ("suspicions", Json.Int r.suspicions);
      ("scrubbed", Json.Int r.scrubbed);
      ("promoted", Json.Int r.promoted);
      ("refilled_local", Json.Int r.refilled_local);
      ("refilled_flood", Json.Int r.refilled_flood);
      ("emptied", Json.Int r.emptied);
      ("tables_consulted", Json.Int r.tables_consulted);
    ]

let summary_json s =
  Json.Obj
    [
      ("samples", Json.Int s.samples);
      ("end_time", Json.Float s.end_time);
      ("mean_live", Json.Float s.mean_live);
      ("min_live", Json.Int s.min_live);
      ("max_live", Json.Int s.max_live);
      ("mean_joining", Json.Float s.mean_joining);
      ("mean_violations", Json.Float s.mean_violations);
      ("max_violations", Json.Int s.max_violations);
      ("mean_holes", Json.Float s.mean_holes);
      ("max_holes", Json.Int s.max_holes);
      ("mean_debt", Json.Float s.mean_debt);
      ("max_debt", Json.Float s.max_debt);
      ("lookup_success", Json.Float s.lookup_success);
      ("msgs_per_node_s", Json.Float s.msgs_per_node_s);
      ("suspected_live_max", Json.Int s.suspected_live_max);
      ("tail_mean_live", Json.Float s.tail_mean_live);
      ("tail_mean_joining", Json.Float s.tail_mean_joining);
      ("tail_lookup_success", Json.Float s.tail_lookup_success);
      ("tail_mean_violations", Json.Float s.tail_mean_violations);
      ("tail_mean_holes", Json.Float s.tail_mean_holes);
      ("tail_stale_fraction", Json.Float s.tail_stale_fraction);
      ("joins_started", Json.Int s.joins_started);
      ("joins_skipped", Json.Int s.joins_skipped);
      ("leaves", Json.Int s.leaves);
      ("crashes", Json.Int s.crashes);
      ("aborted", Json.Int s.aborted);
      ("stuck_reaped", Json.Int s.stuck_reaped);
      ("departures_cancelled", Json.Int s.departures_cancelled);
      ("final_live", Json.Int s.final_live);
      ("final_in_system", Json.Bool s.final_in_system);
      ("final_violations", Json.Int s.final_violations);
      ("final_holes", Json.Int s.final_holes);
      ("final_consistent", Json.Bool s.final_consistent);
      ("drained", Json.Bool s.drained);
      ("events", Json.Int s.events);
      ("leave", leave_json s.leave_report);
      ("repair", repair_json s.repair_report);
    ]

let result_json r =
  Json.Obj
    [
      ("config", config_json r.config);
      ("summary", summary_json r.summary);
      ("series", Json.List (List.map sample_json r.series));
    ]

let point_json p =
  Json.Obj
    [
      ("half_life", Json.Float p.p_half_life);
      ("seed", Json.Int p.p_seed);
      ("holds", Json.Bool (List.is_empty p.p_reasons));
      ("reasons", Json.List (List.map (fun r -> Json.String r) p.p_reasons));
      ("summary", summary_json p.p_summary);
    ]

let opt_float = function None -> Json.Null | Some f -> Json.Float f

let sweep_json w =
  Json.Obj
    [
      ("base", config_json w.sweep_base);
      ("points", Json.List (List.map point_json w.points));
      ("tolerated", opt_float w.tolerated);
      ("collapse", opt_float w.collapse);
      ("predicted", Json.Float w.predicted);
      ( "measured_over_predicted",
        match w.tolerated with
        | Some hl when w.predicted > 0. -> Json.Float (hl /. w.predicted)
        | _ -> Json.Null );
    ]

let bench_json ?sweep r =
  Json.Obj
    ([
       ("schema", Json.String "ntcu-bench-churn/1");
       ("config", config_json r.config);
       ("summary", summary_json r.summary);
       ("series", Json.List (List.map sample_json r.series));
     ]
    @ match sweep with None -> [] | Some w -> [ ("sweep", sweep_json w) ])

(* {1 Plain text} *)

let pp_summary ppf s =
  Fmt.pf ppf
    "@[<v>%d samples, end %.1f s virtual@,\
     live mean %.1f (min %d max %d), joining mean %.1f@,\
     violations mean %.2f (max %d), holes mean %.2f (max %d)@,\
     repair debt mean %.0f ms (max %.0f ms)@,\
     lookup success %.4f (tail %.4f), msgs/node/s %.2f, suspected-live max %d@,\
     arrivals %d (%d skipped), leaves %d, crashes %d, aborted %d, stuck reaped %d, \
     sessions cancelled %d@,\
     final: live %d, all in_system %b, %d violations + %d holes, drained %b, %d messages@,\
     leave: %a@,\
     repair: %a@]"
    s.samples (s.end_time /. 1000.) s.mean_live s.min_live s.max_live s.mean_joining
    s.mean_violations s.max_violations s.mean_holes s.max_holes s.mean_debt s.max_debt
    s.lookup_success s.tail_lookup_success s.msgs_per_node_s s.suspected_live_max
    s.joins_started s.joins_skipped s.leaves s.crashes s.aborted s.stuck_reaped
    s.departures_cancelled s.final_live s.final_in_system s.final_violations s.final_holes
    s.drained s.events Leave_protocol.pp_report s.leave_report Online_repair.pp_report
    s.repair_report

let series_rows series =
  let k = List.length series in
  let stride = max 1 ((k + 11) / 12) in
  List.filteri (fun i _ -> i mod stride = 0 || i = k - 1) series
  |> List.map (fun s ->
         [
           Fmt.str "%.0f" (s.t /. 1000.);
           string_of_int s.live;
           string_of_int s.s_nodes;
           string_of_int s.joining;
           string_of_int s.violations;
           string_of_int s.holes;
           Fmt.str "%.1f" (s.debt /. 1000.);
           string_of_int s.unscrubbed;
           (if s.lookups = 0 then "-"
            else Fmt.str "%.2f" (float_of_int s.lookups_ok /. float_of_int s.lookups));
           string_of_int s.suspected_live;
         ])

let pp_config_line ppf c =
  Fmt.pf ppf
    "n=%d b=%d d=%d duration=%.0fs half-life=%.0fs dist=%s crash=%.2f loss=%.3f seed=%d"
    c.n c.b c.d (c.duration /. 1000.) (c.half_life /. 1000.)
    (Session.kind_name c.dist) c.crash_fraction c.loss c.seed

let pp_result ppf r =
  Fmt.pf ppf "@[<v>continuous churn: %a@,%a%a@]" pp_config_line r.config
    (Ntcu_harness.Report.table
       ~header:
         [ "t(s)"; "live"; "S"; "join"; "viol"; "holes"; "debt(s)"; "unscr"; "look"; "susp" ])
    (series_rows r.series) pp_summary r.summary

let pp_sweep ppf w =
  let rows =
    List.map
      (fun p ->
        [
          Fmt.str "%.0f" (p.p_half_life /. 1000.);
          string_of_int p.p_seed;
          Fmt.str "%.1f" p.p_summary.tail_mean_live;
          Fmt.str "%.1f" p.p_summary.tail_mean_joining;
          Fmt.str "%.3f" p.p_summary.tail_lookup_success;
          Fmt.str "%.4f" p.p_summary.tail_stale_fraction;
          (if List.is_empty p.p_reasons then "yes" else "NO");
          String.concat "," p.p_reasons;
        ])
      w.points
  in
  Fmt.pf ppf
    "@[<v>half-life sweep: %a@,repair latency R=%.0f ms, predicted tolerance ~%.0f s@,%a"
    pp_config_line w.sweep_base (repair_latency w.sweep_base) (w.predicted /. 1000.)
    (Ntcu_harness.Report.table
       ~header:
         [ "half-life(s)"; "seed"; "live~"; "join~"; "lookup"; "stale"; "holds"; "reasons" ])
    rows;
  (match w.tolerated with
  | Some hl ->
    Fmt.pf ppf "tolerated down to half-life %.0f s (predicted %.0f s, ratio %.2f)"
      (hl /. 1000.) (w.predicted /. 1000.)
      (hl /. w.predicted)
  | None -> Fmt.pf ppf "no tested half-life was sustained (predicted %.0f s)" (w.predicted /. 1000.));
  (match w.collapse with
  | Some hl -> Fmt.pf ppf "@,collapse at half-life %.0f s" (hl /. 1000.)
  | None -> Fmt.pf ppf "@,no collapse within the tested range");
  Fmt.pf ppf "@]"
