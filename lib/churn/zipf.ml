type t = { s : float; n : int; cum : float array }

let create ~s ~n =
  if n < 1 then invalid_arg "Zipf.create: n must be >= 1";
  if s < 0. || not (Float.is_finite s) then
    invalid_arg "Zipf.create: s must be finite and >= 0";
  let cum = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (float_of_int (i + 1) ** -.s);
    cum.(i) <- !acc
  done;
  let total = !acc in
  for i = 0 to n - 1 do
    cum.(i) <- cum.(i) /. total
  done;
  (* Guard against the last cumulative landing a ulp below 1. *)
  cum.(n - 1) <- 1.;
  { s; n; cum }

let s t = t.s
let n t = t.n

let head_mass t ~k =
  if k <= 0 then 0. else t.cum.(min k t.n - 1)

let sample t rng =
  let u = Ntcu_std.Rng.float rng 1. in
  (* Smallest index whose cumulative mass exceeds u: u < cum.(i) iff rank i
     (0-based) or earlier covers u. [u] is in [0, 1) and cum.(n-1) = 1, so
     the search always lands in range. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if u < t.cum.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let pp ppf t = Fmt.pf ppf "zipf(s=%g, n=%d)" t.s t.n
