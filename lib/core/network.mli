(** A simulated hypercube-routing network: node registry, message transport
    over the discrete-event engine, and experiment entry points.

    Nodes are {!Node.t} state machines; this module delivers their messages
    with latencies drawn from a {!Ntcu_sim.Latency.t} model and keeps global
    statistics. *)

type t

type reliability = {
  rto : float;  (** initial retransmission timeout (virtual time) *)
  backoff : float;  (** multiplier applied per retry; >= 1 *)
  jitter : float;  (** timeout is scaled by [1 + jitter * u], [u ~ U(0,1)] *)
  max_retries : int;  (** retransmissions before the peer is suspected *)
  seed : int;  (** seed for the jitter RNG *)
}

val default_reliability : reliability
(** [rto = 10.] (10x the default round trip), doubling backoff, 50% jitter,
    8 retries. At 5% loss the probability that a live peer exhausts the
    budget is [(1 - 0.95^2)^9 < 1e-9], so suspicion is effectively crash
    detection. *)

val create :
  ?latency:Ntcu_sim.Latency.t ->
  ?size_mode:Message.size_mode ->
  ?record_trace:bool ->
  ?loss:float * int ->
  ?reliability:reliability ->
  ?fault:Node.fault ->
  Ntcu_id.Params.t ->
  t
(** Default latency: constant 1.0 ms. Default size mode: [Full].

    [loss] is [(probability, seed)]: each message is independently dropped in
    transit with the given probability — deliberately violating the paper's
    reliable-delivery assumption (iii) so its necessity can be measured
    (joins then wedge short of [in_system]). Default: no loss.

    [reliability] enables the ack/retransmit transport: every protocol
    message is sequence-numbered; the receiver acks each copy (acks are
    transport frames, themselves subject to [loss] but never retransmitted)
    and suppresses duplicates; the sender retransmits with exponential
    backoff until acked, and after [max_retries] unanswered copies suspects
    the peer ({!Node.on_suspect} + the {!set_suspicion_handler} hook).
    Default: messages are fire-and-forget as in the paper.

    [fault] installs a test-only protocol bug ({!Node.fault}) on every node
    the network creates, seeds and joiners alike. Used by the schedule
    exploration harness to prove it can detect schedule-dependent bugs.
    Default: none. *)

val params : t -> Ntcu_id.Params.t
val engine : t -> Ntcu_sim.Engine.t
val trace : t -> Ntcu_sim.Trace.t option

(** {1 Building the initial network} *)

val add_seed_node : t -> Ntcu_id.Id.t -> unit
(** Add a single S-node with only self-entries filled — the Section 6.1
    starting point. Consistent on its own, or alongside other seed nodes iff
    tables are completed by {!seed_consistent}. *)

val seed_consistent : t -> seed:int -> Ntcu_id.Id.t list -> unit
(** Install the given nodes as a consistent network [<V, N(V)>]: every entry
    whose required suffix is carried by some member is filled with a
    pseudo-randomly chosen such member (deterministic in [seed]), and reverse
    neighbor sets are registered accordingly. This stands in for a network
    built by prior joins, as in the paper's simulation setup.
    @raise Invalid_argument on duplicate IDs or an empty list. *)

(** {1 Joins} *)

val start_join : t -> ?at:float -> id:Ntcu_id.Id.t -> gateway:Ntcu_id.Id.t -> unit -> unit
(** Schedule a join to begin at time [at] (default: now). The gateway must be
    a registered node (assumption (ii) of the paper).
    @raise Invalid_argument if [id] is already registered. *)

val start_joins : t -> (float * Ntcu_id.Id.t * Ntcu_id.Id.t) list -> unit
(** [start_joins t [(at, id, gateway); ...]] behaves exactly like calling
    {!start_join} on each triple left to right — same registration order,
    same event tie-break order — but seeds the event queue in O(n)
    ({!Ntcu_sim.Engine.schedule_batch}) instead of n heap pushes. Preferred
    for large concurrent-join populations. *)

val run : ?max_events:int -> t -> unit
(** Run the simulation to quiescence. *)

val remove : t -> Ntcu_id.Id.t -> unit
(** Unregister a node (used by the leave-protocol extensions). The caller is
    responsible for having repaired other nodes' tables first;
    {!check_consistent} will report dangling entries otherwise. Messages
    still in flight towards the removed node are silently dropped (and
    counted by {!messages_dropped}).
    @raise Invalid_argument if unknown. *)

val fail : t -> Ntcu_id.Id.t -> unit
(** Crash a node: it stays registered (so its identity and host index
    survive) but never processes another message; deliveries to it are
    dropped. Models fail-stop failures for the recovery extension.
    @raise Invalid_argument if unknown or already failed. *)

val is_failed : t -> Ntcu_id.Id.t -> bool

val live_ids : t -> Ntcu_id.Id.t list
(** Registration-ordered ids excluding failed nodes. *)

val failed_ids : t -> Ntcu_id.Id.t list
(** Registration-ordered ids of crashed nodes still registered — the
    not-yet-reaped population a steady-state maintenance loop probes. *)

val removed_count : t -> int
(** Total {!remove} calls — graceful departures (plus crash reaping). *)

val failed_count : t -> int
(** Total {!fail} calls — crash departures. *)

val messages_dropped : t -> int
(** Deliveries to failed or removed nodes. *)

val messages_lost : t -> int
(** Protocol-message copies (first sends and retransmissions alike) dropped
    in transit by the loss model. Lost acks are counted by {!acks_lost}
    instead, so this stays comparable with the unreliable transport. *)

(** {1 Reliability} *)

val reliable : t -> bool
(** Whether the ack/retransmit transport is enabled. *)

val inject : t -> src:Ntcu_id.Id.t -> Node.action list -> unit
(** Send protocol messages on behalf of [src], exactly as if its [handle]
    had returned them. Used by extensions (online repair, leave protocol) to
    participate in the network without bypassing stats, loss, or the
    reliable transport. *)

val set_suspicion_handler :
  t -> (reporter:Ntcu_id.Id.t -> suspect:Ntcu_id.Id.t -> unit) -> unit
(** Called once per newly-suspected peer, after the reporting sender's own
    {!Node.on_suspect} failover actions have been sent. The online-repair
    extension registers here to disseminate the suspicion. *)

val is_suspected : t -> Ntcu_id.Id.t -> bool
(** Whether any sender has exhausted its retry budget against this peer. *)

val acks_sent : t -> int
val acks_lost : t -> int

(** {1 Adversarial scheduling} *)

(** One frame put on the simulated wire, as seen by the delay hook: a
    protocol message, or a transport-level ack (reliable mode only). *)
type wire = Protocol of Message.t | Ack

val set_delay_hook :
  t ->
  (wire:wire -> src:Ntcu_id.Id.t -> dst:Ntcu_id.Id.t -> seq:int -> float -> float) option ->
  unit
(** Install (or clear) a hook that rewrites the sampled latency of every
    frame actually scheduled on the wire (frames dropped by the loss model
    are not seen). The hook receives the sampled delay last and returns the
    delay to use; non-positive results are clamped to
    {!Ntcu_sim.Latency.min_delay}. [seq] numbers hook invocations from 0 in
    scheduling order — because the simulation is deterministic, the same
    seeds yield the same sequence, so a scheduler keyed on [seq] is exactly
    replayable. Adversarial schedulers (random permuters, PCT-style priority
    schedulers, targeted reorderers) are built on this single hook. *)

val stuck_joiners : t -> Node.t list
(** Joiners that never reached [in_system] (possible only when an assumption
    of the paper — reliable delivery, no deletion during joins — was
    deliberately violated). *)

(** {1 Inspection} *)

val size : t -> int
val mem : t -> Ntcu_id.Id.t -> bool
val node : t -> Ntcu_id.Id.t -> Node.t option
val node_exn : t -> Ntcu_id.Id.t -> Node.t
val nodes : t -> Node.t list
val joiners : t -> Node.t list
val ids : t -> Ntcu_id.Id.t list
val tables : t -> Ntcu_table.Table.t list

val all_in_system : t -> bool
(** Theorem 2's liveness condition: every node reached status [in_system]. *)

val is_quiescent : t -> bool
(** No events pending. *)

val check_consistent : ?limit:int -> t -> Ntcu_table.Check.violation list
(** Definition 3.8 over the whole network; empty iff consistent. [limit]
    (default 100) caps the number of violations collected — and aborts the
    scan once reached, so [~limit:1] is the cheap yes/no probe. *)

val global_stats : t -> Stats.t
(** Totals across all nodes (each message counted once as sent, once as
    received). *)

val messages_delivered : t -> int
