module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Snapshot = Ntcu_table.Table.Snapshot

type sign = Negative | Positive

let sign_equal a b =
  match (a, b) with
  | Negative, Negative | Positive, Positive -> true
  | (Negative | Positive), _ -> false

type t =
  | Cp_rst of { level : int }
  | Cp_rly of { table : Snapshot.t }
  | Join_wait
  | Join_wait_rly of { sign : sign; occupant : Id.t; table : Snapshot.t }
  | Join_noti of {
      table : Snapshot.t;
      noti_level : int;
      filled : (int * int) list option;
    }
  | Join_noti_rly of { sign : sign; table : Snapshot.t; flag : bool }
  | In_sys_noti
  | Spe_noti of { origin : Id.t; subject : Id.t }
  | Spe_noti_rly of { origin : Id.t; subject : Id.t }
  | Rv_ngh_noti of { level : int; digit : int; recorded : Ntcu_table.Table.nstate }
  | Rv_ngh_noti_rly of { level : int; digit : int; state : Ntcu_table.Table.nstate }

type kind =
  | K_cp_rst
  | K_cp_rly
  | K_join_wait
  | K_join_wait_rly
  | K_join_noti
  | K_join_noti_rly
  | K_in_sys_noti
  | K_spe_noti
  | K_spe_noti_rly
  | K_rv_ngh_noti
  | K_rv_ngh_noti_rly

let kind = function
  | Cp_rst _ -> K_cp_rst
  | Cp_rly _ -> K_cp_rly
  | Join_wait -> K_join_wait
  | Join_wait_rly _ -> K_join_wait_rly
  | Join_noti _ -> K_join_noti
  | Join_noti_rly _ -> K_join_noti_rly
  | In_sys_noti -> K_in_sys_noti
  | Spe_noti _ -> K_spe_noti
  | Spe_noti_rly _ -> K_spe_noti_rly
  | Rv_ngh_noti _ -> K_rv_ngh_noti
  | Rv_ngh_noti_rly _ -> K_rv_ngh_noti_rly

let kind_count = 11

let kind_index = function
  | K_cp_rst -> 0
  | K_cp_rly -> 1
  | K_join_wait -> 2
  | K_join_wait_rly -> 3
  | K_join_noti -> 4
  | K_join_noti_rly -> 5
  | K_in_sys_noti -> 6
  | K_spe_noti -> 7
  | K_spe_noti_rly -> 8
  | K_rv_ngh_noti -> 9
  | K_rv_ngh_noti_rly -> 10

let kind_name = function
  | K_cp_rst -> "CpRstMsg"
  | K_cp_rly -> "CpRlyMsg"
  | K_join_wait -> "JoinWaitMsg"
  | K_join_wait_rly -> "JoinWaitRlyMsg"
  | K_join_noti -> "JoinNotiMsg"
  | K_join_noti_rly -> "JoinNotiRlyMsg"
  | K_in_sys_noti -> "InSysNotiMsg"
  | K_spe_noti -> "SpeNotiMsg"
  | K_spe_noti_rly -> "SpeNotiRlyMsg"
  | K_rv_ngh_noti -> "RvNghNotiMsg"
  | K_rv_ngh_noti_rly -> "RvNghNotiRlyMsg"

(* The copy walk (CpRst/CpRly) is a strictly sequential request/reply chain
   private to one joiner; every other message participates in a cross-node
   ordering the consistency argument constrains (who is stored first, when a
   T-entry flips to S, which repair notification lands before which scrub).
   Adversarial schedulers target exactly these. *)
let ordering_critical m =
  match kind m with
  | K_cp_rst | K_cp_rly -> false
  | K_join_wait | K_join_wait_rly | K_join_noti | K_join_noti_rly | K_in_sys_noti
  | K_spe_noti | K_spe_noti_rly | K_rv_ngh_noti | K_rv_ngh_noti_rly ->
    true

let pp_kind ppf k = Fmt.string ppf (kind_name k)

let pp ppf m =
  match m with
  | Cp_rst { level } -> Fmt.pf ppf "CpRstMsg(level=%d)" level
  | Cp_rly { table } -> Fmt.pf ppf "CpRlyMsg(%d cells)" (Snapshot.cell_count table)
  | Join_wait -> Fmt.string ppf "JoinWaitMsg"
  | Join_wait_rly { sign; occupant; table } ->
    Fmt.pf ppf "JoinWaitRlyMsg(%s, %a, %d cells)"
      (match sign with Negative -> "neg" | Positive -> "pos")
      Id.pp occupant (Snapshot.cell_count table)
  | Join_noti { table; noti_level; _ } ->
    Fmt.pf ppf "JoinNotiMsg(%d cells, noti_level=%d)" (Snapshot.cell_count table)
      noti_level
  | Join_noti_rly { sign; table; flag } ->
    Fmt.pf ppf "JoinNotiRlyMsg(%s, %d cells, f=%b)"
      (match sign with Negative -> "neg" | Positive -> "pos")
      (Snapshot.cell_count table) flag
  | In_sys_noti -> Fmt.string ppf "InSysNotiMsg"
  | Spe_noti { origin; subject } ->
    Fmt.pf ppf "SpeNotiMsg(origin=%a, subject=%a)" Id.pp origin Id.pp subject
  | Spe_noti_rly { origin = _; subject } -> Fmt.pf ppf "SpeNotiRlyMsg(%a)" Id.pp subject
  | Rv_ngh_noti { level; digit; recorded } ->
    Fmt.pf ppf "RvNghNotiMsg(%d,%d,%a)" level digit Ntcu_table.Table.pp_nstate recorded
  | Rv_ngh_noti_rly { level; digit; state } ->
    Fmt.pf ppf "RvNghNotiRlyMsg(%d,%d,%a)" level digit Ntcu_table.Table.pp_nstate state

type size_mode = Full | Level_range | Bit_vector

(* Wire-size model: a fixed per-message header, 4-byte IPv4 address + 2-byte
   port per node reference, packed digits for identifiers, and one byte of
   position/state per table cell. *)

let header_bytes = 16
let addr_bytes = 6

let id_bytes (p : Params.t) = ((p.d * Ntcu_id.Packed.bits_per_digit p.b) + 7) / 8

let node_ref_bytes p = id_bytes p + addr_bytes

let cell_bytes p = node_ref_bytes p + 3 (* level, digit, state *)

let snapshot_bytes p snap = Snapshot.cell_count snap * cell_bytes p

let bit_vector_bytes (p : Params.t) = ((p.d * p.b) + 7) / 8

let size_bytes (p : Params.t) m =
  header_bytes
  +
  match m with
  | Cp_rst _ -> 1
  | Cp_rly { table } -> snapshot_bytes p table
  | Join_wait -> 0
  | Join_wait_rly { table; _ } -> 1 + node_ref_bytes p + snapshot_bytes p table
  | Join_noti { table; filled; _ } ->
    1 + snapshot_bytes p table
    + (match filled with None -> 0 | Some _ -> bit_vector_bytes p)
  | Join_noti_rly { table; _ } -> 2 + snapshot_bytes p table
  | In_sys_noti -> 0
  | Spe_noti _ | Spe_noti_rly _ -> 2 * node_ref_bytes p
  | Rv_ngh_noti _ | Rv_ngh_noti_rly _ -> 3
