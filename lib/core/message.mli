(** Join-protocol messages (paper, Figure 4).

    Three message types carry a copy of the sender's neighbor table and are
    the "big" messages analyzed in Section 5.2: [Cp_rly], [Join_wait_rly] and
    [Join_noti] (plus [Join_noti_rly]); the rest are small. Section 6.2's
    message-size reductions are selected by {!size_mode} and accounted for by
    {!size_bytes}. *)

type sign = Negative | Positive

val sign_equal : sign -> sign -> bool

type t =
  | Cp_rst of { level : int }
      (** Request a copy of the receiver's table. [level] is the level the
          joining node is about to copy (used by reduced reply modes). *)
  | Cp_rly of { table : Ntcu_table.Table.Snapshot.t }
  | Join_wait
      (** Sent by a node in status [waiting] to ask to be stored. *)
  | Join_wait_rly of {
      sign : sign;
      occupant : Ntcu_id.Id.t;
          (** On [Negative], the node already occupying the entry; on
              [Positive], the joining node itself. *)
      table : Ntcu_table.Table.Snapshot.t;
    }
  | Join_noti of {
      table : Ntcu_table.Table.Snapshot.t;
      noti_level : int;
      filled : (int * int) list option;
          (** In bit-vector mode, the positions (level, digit) filled in the
              sender's table, transmitted as a [d*b]-bit vector. *)
    }
  | Join_noti_rly of {
      sign : sign;
      table : Ntcu_table.Table.Snapshot.t;
      flag : bool;  (** The paper's [f]: triggers a [Spe_noti]. *)
    }
  | In_sys_noti
  | Spe_noti of { origin : Ntcu_id.Id.t; subject : Ntcu_id.Id.t }
      (** Forwarded along neighbor pointers to tell some node about
          [subject]; [origin] receives the final reply. *)
  | Spe_noti_rly of { origin : Ntcu_id.Id.t; subject : Ntcu_id.Id.t }
  | Rv_ngh_noti of { level : int; digit : int; recorded : Ntcu_table.Table.nstate }
      (** "I stored you in my (level, digit)-entry with this state." *)
  | Rv_ngh_noti_rly of { level : int; digit : int; state : Ntcu_table.Table.nstate }
      (** Correction sent back when the recorded state disagrees with the
          receiver's actual status. *)

type kind =
  | K_cp_rst
  | K_cp_rly
  | K_join_wait
  | K_join_wait_rly
  | K_join_noti
  | K_join_noti_rly
  | K_in_sys_noti
  | K_spe_noti
  | K_spe_noti_rly
  | K_rv_ngh_noti
  | K_rv_ngh_noti_rly

val kind : t -> kind
val kind_count : int

val ordering_critical : t -> bool
(** Protocol-critical for delivery ordering: [JoinWait]/[JoinNoti] traffic
    and their replies, [SpeNoti] forwarding, [InSysNoti] status flips and
    [RvNghNoti] repair/reverse-neighbor notifications. The copy-phase
    request/reply pair ([CpRst]/[CpRly]) is a joiner-private sequential
    chain and is excluded. Targeted adversarial schedulers reorder only the
    critical messages. *)

val kind_index : kind -> int
val kind_name : kind -> string
val pp_kind : kind Fmt.t
val pp : t Fmt.t

(** {1 Size accounting} *)

type size_mode =
  | Full  (** Whole tables in every table-carrying message. *)
  | Level_range
      (** Section 6.2, first reduction: [Join_noti] carries only levels
          [noti_level .. csuf]; [Cp_rly] carries only the requested level. *)
  | Bit_vector
      (** Section 6.2, second reduction: [Level_range] plus a bit vector in
          [Join_noti] letting the replier omit entries the sender already
          has. *)

val id_bytes : Ntcu_id.Params.t -> int
(** Wire size of one identifier. *)

val cell_bytes : Ntcu_id.Params.t -> int
(** Wire size of one table cell (identifier + address + position + state). *)

val size_bytes : Ntcu_id.Params.t -> t -> int
(** Modeled wire size of a message: fixed header plus payload. The embedded
    snapshots are assumed already reduced by the sender according to the size
    mode, so this function just measures what is present. *)
