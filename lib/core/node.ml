module Id = Ntcu_id.Id
module Table = Ntcu_table.Table
module Snapshot = Table.Snapshot

type status = Copying | Waiting | Notifying | In_system

let status_equal a b =
  match (a, b) with
  | Copying, Copying | Waiting, Waiting | Notifying, Notifying | In_system, In_system ->
    true
  | (Copying | Waiting | Notifying | In_system), _ -> false

let pp_status ppf s =
  Fmt.string ppf
    (match s with
    | Copying -> "copying"
    | Waiting -> "waiting"
    | Notifying -> "notifying"
    | In_system -> "in_system")

type config = { params : Ntcu_id.Params.t; size_mode : Message.size_mode }

type action = { dst : Id.t; msg : Message.t }

(* Test-only protocol mutations for the schedule-exploration harness: each
   reintroduces a plausible ordering bug (the kind Figure 13's careful
   bookkeeping exists to prevent) whose trigger window only opens under
   particular message interleavings. Production paths never set these. *)
type fault =
  | Drop_queued_join_waits
      (* Switch_To_S_Node forgets Q_j: JoinWaitMsgs that arrived while the
         node was still joining are silently discarded instead of answered. *)
  | Forget_negative_forward
      (* A waiting node that receives a negative JoinWaitRlyMsg does not
         forward its JoinWaitMsg to the named occupant — it just keeps
         waiting. Only dependent joins racing for one entry open the
         window. *)

let fault_equal a b =
  match (a, b) with
  | Drop_queued_join_waits, Drop_queued_join_waits
  | Forget_negative_forward, Forget_negative_forward ->
    true
  | (Drop_queued_join_waits | Forget_negative_forward), _ -> false

type t = {
  config : config;
  id : Id.t;
  table : Table.t;
  stats : Stats.t;
  joiner : bool;
  mutable status : status;
  mutable noti_level : int;
  mutable q_r : Id.Set.t; (* nodes whose reply we await *)
  mutable q_n : Id.Set.t; (* nodes we have notified *)
  mutable q_j : Id.t list; (* deferred JoinWaitMsg senders, FIFO *)
  mutable q_sr : Id.Set.t; (* SpeNoti subjects whose reply we await *)
  mutable q_sn : Id.Set.t; (* SpeNoti subjects already handled *)
  mutable suspects : Id.Set.t; (* peers presumed crashed (retry budget spent) *)
  mutable spe_pending : (Id.t * Id.t) list; (* (first-hop target, subject) *)
  (* Copying-phase cursor (Figure 5's i, p, g). *)
  mutable copy_level : int;
  mutable copy_from : Id.t option; (* the node whose table we are copying *)
  mutable t_begin : float option;
  mutable t_end : float option;
  mutable fault : fault option; (* injected bug, exploration tests only *)
}

let make config id ~joiner ~status =
  {
    config;
    id;
    table = Table.create config.params ~owner:id;
    stats = Stats.create ();
    joiner;
    status;
    noti_level = 0;
    q_r = Id.Set.empty;
    q_n = Id.Set.empty;
    q_j = [];
    q_sr = Id.Set.empty;
    q_sn = Id.Set.empty;
    suspects = Id.Set.empty;
    spe_pending = [];
    copy_level = 0;
    copy_from = None;
    t_begin = None;
    t_end = None;
    fault = None;
  }

let create_seed config id =
  let t = make config id ~joiner:false ~status:In_system in
  Table.fill_self t.table S;
  t

let create_joiner config id = make config id ~joiner:true ~status:Copying

let id t = t.id
let status t = t.status
let table t = t.table
let stats t = t.stats
let noti_level t = t.noti_level
let is_joiner t = t.joiner
let t_begin t = t.t_begin
let t_end t = t.t_end
let pending_replies t = Id.Set.cardinal t.q_r + Id.Set.cardinal t.q_sr
let queued_join_waits t = List.length t.q_j
let suspects t = t.suspects
let is_suspect t u = Id.Set.mem u t.suspects
let set_fault t f = t.fault <- f
let has_fault t f = match t.fault with Some g -> fault_equal g f | None -> false

let digit_of _t other level = Id.digit other level

let csuf t other = Id.csuf_len t.id other

(* Write [node] into the (level, digit)-entry and emit the RvNghNotiMsg that
   the paper's pseudo-code elides ("when any node x sets Nx(i,j) = y, y <> x,
   x needs to send a RvNghNotiMsg"). *)
let set_entry t ~level ~digit node state acts =
  Table.set t.table ~level ~digit node state;
  if Id.equal node t.id then acts
  else { dst = node; msg = Message.Rv_ngh_noti { level; digit; recorded = state } } :: acts

(* ---- Snapshot construction per the configured size mode (Section 6.2) ---- *)

let snap_full t = Snapshot.of_table t.table

let snap_cp_rly t ~level =
  match t.config.size_mode with
  | Message.Full -> snap_full t
  | Message.Level_range | Message.Bit_vector ->
    (* The joining node copies only the requested level, so that is all we
       send. Safe: Figure 5 reads nothing else from the reply. *)
    Snapshot.of_table_levels t.table ~lo:level ~hi:level

let snap_join_noti t ~recipient =
  match t.config.size_mode with
  | Message.Full -> snap_full t
  | Message.Level_range | Message.Bit_vector ->
    (* "Only including level-i, i = x.noti_level, to level-k,
       k = |csuf(x.ID, y.ID)|, is enough." *)
    Snapshot.of_table_levels t.table ~lo:t.noti_level ~hi:(csuf t recipient)

let filled_positions t =
  Table.fold t.table ~init:[] ~f:(fun acc ~level ~digit _ _ -> (level, digit) :: acc)

let snap_join_noti_rly t ~sender_noti_level ~sender_filled =
  match (t.config.size_mode, sender_filled) with
  | (Message.Full | Message.Level_range), _ | Message.Bit_vector, None -> snap_full t
  | Message.Bit_vector, Some filled ->
    (* The reply omits low-level entries the sender already has: include
       level >= the sender's noti_level, or positions marked '0' in its bit
       vector. *)
    let filled_tbl = Hashtbl.create 64 in
    List.iter (fun pos -> Hashtbl.replace filled_tbl pos ()) filled;
    Snapshot.filter (snap_full t) ~f:(fun (c : Snapshot.cell) ->
        c.level >= sender_noti_level || not (Hashtbl.mem filled_tbl (c.level, c.digit)))

let join_noti_msg t ~recipient =
  let filled =
    match t.config.size_mode with
    | Message.Full | Message.Level_range -> None
    | Message.Bit_vector -> Some (filled_positions t)
  in
  Message.Join_noti
    { table = snap_join_noti t ~recipient; noti_level = t.noti_level; filled }

(* ---- Switch_To_S_Node (Figure 13) ---- *)

let switch_to_s_node t ~now acts =
  assert (status_equal t.status Notifying || status_equal t.status Waiting);
  t.status <- In_system;
  t.t_end <- Some now;
  let p = t.config.params in
  for level = 0 to p.d - 1 do
    Table.set_state t.table ~level ~digit:(Id.digit t.id level) S
  done;
  let acts =
    Id.Set.fold
      (fun v acc ->
        if Id.equal v t.id then acc else { dst = v; msg = Message.In_sys_noti } :: acc)
      (Table.all_reverse t.table) acts
  in
  let acts =
    if has_fault t Drop_queued_join_waits then acts
    else
    List.fold_left
      (fun acc u ->
        let k = csuf t u in
        match Table.neighbor t.table ~level:k ~digit:(digit_of t u k) with
        | None ->
          let acc = set_entry t ~level:k ~digit:(digit_of t u k) u T acc in
          {
            dst = u;
            msg =
              Message.Join_wait_rly
                { sign = Positive; occupant = u; table = snap_full t };
          }
          :: acc
        | Some occupant when Id.equal occupant u ->
          (* The entry already holds u (filled via another path while we were
             still joining): u is stored, so the reply is positive. Figure 13
             would send a negative reply naming u itself, which would make u
             forward a JoinWaitMsg to itself. *)
          {
            dst = u;
            msg =
              Message.Join_wait_rly
                { sign = Positive; occupant = u; table = snap_full t };
          }
          :: acc
        | Some occupant ->
          {
            dst = u;
            msg = Message.Join_wait_rly { sign = Negative; occupant; table = snap_full t };
          }
          :: acc)
      acts (List.rev t.q_j)
  in
  t.q_j <- [];
  acts

let maybe_switch t ~now acts =
  if status_equal t.status Notifying && Id.Set.is_empty t.q_r && Id.Set.is_empty t.q_sr then
    switch_to_s_node t ~now acts
  else acts

(* ---- Check_Ngh_Table (Figure 8) ---- *)

let check_ngh_table t snapshot acts =
  let acts = ref acts in
  Snapshot.iter snapshot (fun (c : Snapshot.cell) ->
      (* Skip suspects: stale snapshots keep circulating after a crash, and
         re-adding a dead node would just restart the suspicion cycle. *)
      if not (Id.equal c.node t.id) && not (Id.Set.mem c.node t.suspects) then begin
        let u = c.node in
        let k = csuf t u in
        let j = digit_of t u k in
        (match Table.neighbor t.table ~level:k ~digit:j with
        | None -> acts := set_entry t ~level:k ~digit:j u c.state !acts
        | Some _ ->
          (* Entry taken: keep the extra suffix-holder as a backup neighbor
             for fault-tolerant routing (Section 2.1). *)
          ignore (Table.add_backup t.table ~level:k ~digit:j u));
        if status_equal t.status Notifying && k >= t.noti_level && not (Id.Set.mem u t.q_n)
        then begin
          acts := { dst = u; msg = join_noti_msg t ~recipient:u } :: !acts;
          t.q_n <- Id.Set.add u t.q_n;
          t.q_r <- Id.Set.add u t.q_r
        end
      end);
  !acts

(* Best alternative contact: the known node (primary or backup) sharing the
   longest common suffix with us, excluding self and suspects. Ties broken by
   Id.compare for determinism. *)
let pick_candidate t =
  let better cur cand =
    match cur with
    | None -> Some cand
    | Some best ->
      let cb = csuf t best and cc = csuf t cand in
      if cc > cb || (cc = cb && Id.compare cand best < 0) then Some cand else Some best
  in
  let consider acc u =
    if Id.equal u t.id || Id.Set.mem u t.suspects then acc else better acc u
  in
  let acc =
    Table.fold t.table ~init:None ~f:(fun acc ~level:_ ~digit:_ u _ -> consider acc u)
  in
  let p = t.config.params in
  let acc = ref acc in
  for level = 0 to p.d - 1 do
    for digit = 0 to p.b - 1 do
      List.iter (fun u -> acc := consider !acc u) (Table.backups t.table ~level ~digit)
    done
  done;
  !acc

(* The node we were waiting on is gone: ask the best remaining contact to
   store us instead. *)
let rewait t acts =
  match pick_candidate t with
  | Some target ->
    t.q_n <- Id.Set.add target t.q_n;
    t.q_r <- Id.Set.add target t.q_r;
    { dst = target; msg = Message.Join_wait } :: acts
  | None -> acts

(* ---- Action in status copying (Figure 5) ---- *)

let begin_join t ~now ~gateway =
  if (not (status_equal t.status Copying)) || Option.is_some t.t_begin then
    invalid_arg "Node.begin_join: join already started";
  if Id.equal gateway t.id then invalid_arg "Node.begin_join: gateway is the node itself";
  t.t_begin <- Some now;
  t.copy_level <- 0;
  t.copy_from <- Some gateway;
  [ { dst = gateway; msg = Message.Cp_rst { level = 0 } } ]

(* Stop copying: install self-entries, move to waiting, send the JoinWaitMsg
   (to the last copied node when no next-level node exists, or to the T-node
   that blocked the copy walk). *)
let finish_copying t ~join_wait_target acts =
  let p = t.config.params in
  for level = 0 to p.d - 1 do
    Table.set t.table ~level ~digit:(Id.digit t.id level) t.id T
  done;
  t.status <- Waiting;
  t.copy_from <- None;
  t.q_n <- Id.Set.add join_wait_target t.q_n;
  t.q_r <- Id.Set.add join_wait_target t.q_r;
  { dst = join_wait_target; msg = Message.Join_wait } :: acts

let on_cp_rly t ~src snapshot =
  if
    (not (status_equal t.status Copying))
    || (match t.copy_from with Some g -> not (Id.equal g src) | None -> true)
  then
    (* Stale: we suspected the sender and failed over to another copy source
       before this (possibly retransmitted) reply got through. *)
    []
  else begin
    let level = t.copy_level in
    (* Copy level-i neighbors of g into level-i of our table. *)
    let acts = ref [] in
    Snapshot.iter snapshot (fun (c : Snapshot.cell) ->
        if
          c.level = level
          && (not (Id.equal c.node t.id))
          && not (Id.Set.mem c.node t.suspects)
        then acts := set_entry t ~level ~digit:c.digit c.node c.state !acts);
    (* g' = Np(i, x[i]); continue while it exists and is an S-node. *)
    let own_digit = Id.digit t.id level in
    match Snapshot.find snapshot ~level ~digit:own_digit with
    | Some { node = next; _ } when Id.Set.mem next t.suspects ->
      finish_copying t ~join_wait_target:src !acts
    | Some { node = next; state = S; _ } when not (Id.equal next t.id) ->
      t.copy_level <- level + 1;
      t.copy_from <- Some next;
      { dst = next; msg = Message.Cp_rst { level = level + 1 } } :: !acts
    | Some { node = next; state = T; _ } when not (Id.equal next t.id) ->
      finish_copying t ~join_wait_target:next !acts
    | Some _ | None -> finish_copying t ~join_wait_target:src !acts
  end

(* ---- Action on receiving JoinWaitMsg (Figure 6) ---- *)

let on_join_wait t ~src =
  let k = csuf t src in
  let j = digit_of t src k in
  if status_equal t.status In_system then begin
    match Table.neighbor t.table ~level:k ~digit:j with
    | Some occupant when not (Id.equal occupant src) ->
      (* Refused as primary, but a valid holder of the suffix: keep it as a
         backup neighbor. *)
      ignore (Table.add_backup t.table ~level:k ~digit:j src);
      [
        {
          dst = src;
          msg = Message.Join_wait_rly { sign = Negative; occupant; table = snap_full t };
        };
      ]
    | Some _ | None ->
      let acts = set_entry t ~level:k ~digit:j src T [] in
      {
        dst = src;
        msg = Message.Join_wait_rly { sign = Positive; occupant = src; table = snap_full t };
      }
      :: acts
  end
  else begin
    if not (List.exists (Id.equal src) t.q_j) then t.q_j <- t.q_j @ [ src ];
    []
  end

(* ---- Action on receiving JoinWaitRlyMsg (Figure 7) ---- *)

let on_join_wait_rly t ~now ~src sign occupant snapshot =
  t.q_r <- Id.Set.remove src t.q_r;
  let k = csuf t src in
  (match Table.neighbor t.table ~level:k ~digit:(digit_of t src k) with
  | Some n when Id.equal n src -> Table.set_state t.table ~level:k ~digit:(digit_of t src k) S
  | Some _ | None -> ());
  let acts =
    if not (status_equal t.status Waiting) then
      (* Stale: a failover already moved us past the waiting phase; keep the
         table upkeep above but do not re-enter it. *)
      []
    else
      match sign with
    | Message.Positive ->
      t.status <- Notifying;
      t.noti_level <- k;
      Table.add_reverse t.table ~level:k ~digit:(Id.digit t.id k) src;
      []
    | Message.Negative ->
      if Id.equal occupant t.id then
        (* Defensive: a negative reply naming ourselves means we are stored;
           treat as positive (see switch_to_s_node). *)
        begin
          t.status <- Notifying;
          t.noti_level <- k;
          []
        end
      else if Id.Set.mem occupant t.suspects then
        (* The replier named an occupant we already suspect is dead (it has
           not learned yet); fail over to a live contact directly. *)
        rewait t []
      else if has_fault t Forget_negative_forward then []
      else begin
        t.q_n <- Id.Set.add occupant t.q_n;
        t.q_r <- Id.Set.add occupant t.q_r;
        [ { dst = occupant; msg = Message.Join_wait } ]
      end
  in
  let acts = check_ngh_table t snapshot acts in
  maybe_switch t ~now acts

(* ---- Action on receiving JoinNotiMsg (Figure 9) ---- *)

let on_join_noti t ~src (snapshot : Snapshot.t) =
  let k = csuf t src in
  let j = digit_of t src k in
  let acts =
    if Option.is_none (Table.neighbor t.table ~level:k ~digit:j) then
      set_entry t ~level:k ~digit:j src T []
    else []
  in
  (* f: the sender's table does not name us as its (k, y[k])-neighbor even
     though we are an S-node, so the actual occupant must be told about us. *)
  let flag =
    status_equal t.status In_system
    &&
    match Snapshot.find snapshot ~level:k ~digit:(Id.digit t.id k) with
    | Some { node; _ } -> not (Id.equal node t.id)
    | None -> true
  in
  let sign =
    match Table.neighbor t.table ~level:k ~digit:j with
    | Some n when Id.equal n src -> Message.Positive
    | Some _ | None -> Message.Negative
  in
  (acts, sign, flag)

(* ---- Action on receiving JoinNotiRlyMsg (Figure 10) ---- *)

let on_join_noti_rly t ~now ~src sign snapshot flag =
  t.q_r <- Id.Set.remove src t.q_r;
  let k = csuf t src in
  if Message.sign_equal sign Message.Positive then
    Table.add_reverse t.table ~level:k ~digit:(Id.digit t.id k) src;
  let acts =
    if flag && k > t.noti_level && not (Id.Set.mem src t.q_sn) then begin
      match Table.neighbor t.table ~level:k ~digit:(digit_of t src k) with
      | Some occupant when not (Id.equal occupant src) ->
        t.q_sn <- Id.Set.add src t.q_sn;
        t.q_sr <- Id.Set.add src t.q_sr;
        t.spe_pending <- (occupant, src) :: t.spe_pending;
        [ { dst = occupant; msg = Message.Spe_noti { origin = t.id; subject = src } } ]
      | Some _ | None -> []
    end
    else []
  in
  let acts = check_ngh_table t snapshot acts in
  maybe_switch t ~now acts

(* ---- Action on receiving SpeNotiMsg (Figure 11) ---- *)

let on_spe_noti t origin subject =
  if Id.Set.mem subject t.suspects then
    (* The subject crashed: do not store it, just let the origin's wait
       drain. *)
    if Id.equal origin t.id then begin
      t.q_sr <- Id.Set.remove subject t.q_sr;
      []
    end
    else [ { dst = origin; msg = Message.Spe_noti_rly { origin; subject } } ]
  else begin
    let k = Id.csuf_len subject t.id in
    let j = Id.digit subject k in
    let acts =
      if Option.is_none (Table.neighbor t.table ~level:k ~digit:j) then
        set_entry t ~level:k ~digit:j subject S []
      else []
    in
    match Table.neighbor t.table ~level:k ~digit:j with
    | Some n when not (Id.equal n subject) ->
      { dst = n; msg = Message.Spe_noti { origin; subject } } :: acts
    | Some _ | None ->
      { dst = origin; msg = Message.Spe_noti_rly { origin; subject } } :: acts
  end

let on_spe_noti_rly t ~now subject =
  t.q_sr <- Id.Set.remove subject t.q_sr;
  t.spe_pending <- List.filter (fun (_, s) -> not (Id.equal s subject)) t.spe_pending;
  maybe_switch t ~now []

(* ---- Action on receiving InSysNotiMsg (Figure 14) ---- *)

let on_in_sys_noti t ~src =
  let k = csuf t src in
  let j = digit_of t src k in
  (match Table.neighbor t.table ~level:k ~digit:j with
  | Some n when Id.equal n src -> Table.set_state t.table ~level:k ~digit:j S
  | Some _ | None -> ());
  []

(* ---- Reverse-neighbor bookkeeping (Figure 4's RvNghNotiMsg) ---- *)

let on_rv_ngh_noti t ~src ~level ~digit recorded =
  Table.add_reverse t.table ~level ~digit src;
  let actual : Ntcu_table.Table.nstate = if status_equal t.status In_system then S else T in
  if not (Table.nstate_equal actual recorded) then
    [ { dst = src; msg = Message.Rv_ngh_noti_rly { level; digit; state = actual } } ]
  else []

let on_rv_ngh_noti_rly t ~src ~level ~digit state =
  (match Table.neighbor t.table ~level ~digit with
  | Some n when Id.equal n src -> Table.set_state t.table ~level ~digit state
  | Some _ | None -> ());
  []

(* ---- Failure suspicion (the transport's retry budget was exhausted) ---- *)

(* Remove every trace of [peer] from local state, promoting backups into the
   holes it leaves behind. *)
let scrub_peer t peer acts =
  Table.remove_backup t.table peer;
  Table.remove_reverse t.table peer;
  let holes =
    Table.fold t.table ~init:[] ~f:(fun acc ~level ~digit n _ ->
        if Id.equal n peer then (level, digit) :: acc else acc)
  in
  let acts =
    List.fold_left
      (fun acc (level, digit) ->
        Table.clear t.table ~level ~digit;
        match Table.promote_backup t.table ~level ~digit with
        | Some promoted when not (Id.equal promoted t.id) ->
          (* Register with the promoted node as any other write would. *)
          { dst = promoted; msg = Message.Rv_ngh_noti { level; digit; recorded = S } }
          :: acc
        | Some _ | None -> acc)
      acts holes
  in
  t.q_r <- Id.Set.remove peer t.q_r;
  t.q_n <- Id.Set.remove peer t.q_n;
  t.q_sr <- Id.Set.remove peer t.q_sr;
  t.q_sn <- Id.Set.remove peer t.q_sn;
  t.q_j <- List.filter (fun u -> not (Id.equal u peer)) t.q_j;
  t.spe_pending <- List.filter (fun (_, s) -> not (Id.equal s peer)) t.spe_pending;
  acts

(* Re-route SpeNotiMsgs whose first hop was [peer]: the entry it occupied has
   just been scrubbed, so either a promoted backup takes the message or the
   hole is ours to fill with the subject directly. *)
let respe t peer acts =
  let stale, keep = List.partition (fun (tgt, _) -> Id.equal tgt peer) t.spe_pending in
  t.spe_pending <- keep;
  List.fold_left
    (fun acc (_, subject) ->
      let k = Id.csuf_len subject t.id in
      let j = Id.digit subject k in
      match Table.neighbor t.table ~level:k ~digit:j with
      | Some occupant when not (Id.equal occupant subject) ->
        t.spe_pending <- (occupant, subject) :: t.spe_pending;
        { dst = occupant; msg = Message.Spe_noti { origin = t.id; subject } } :: acc
      | Some _ ->
        (* The subject itself now holds the entry; nothing left to tell. *)
        t.q_sr <- Id.Set.remove subject t.q_sr;
        acc
      | None ->
        t.q_sr <- Id.Set.remove subject t.q_sr;
        set_entry t ~level:k ~digit:j subject S acc)
    acts stale

(* The node we were copying from died: resume the copy walk at another known
   node, re-copying from the longest level its suffix supports. *)
let recopy t peer acts =
  match t.copy_from with
  | Some g when Id.equal g peer -> (
    match pick_candidate t with
    | Some next ->
      let level = min t.copy_level (csuf t next) in
      t.copy_level <- level;
      t.copy_from <- Some next;
      { dst = next; msg = Message.Cp_rst { level } } :: acts
    | None ->
      (* No live contact known — with the gateway gone before any reply, the
         paper's assumption (ii) is genuinely unsatisfiable. *)
      acts)
  | Some _ | None -> acts

let on_suspect t ~now ~peer ~failed =
  let first = not (Id.Set.mem peer t.suspects) in
  let waiting_on = Id.Set.mem peer t.q_r in
  t.suspects <- Id.Set.add peer t.suspects;
  let acts = if first then respe t peer (scrub_peer t peer []) else [] in
  let acts =
    if first then
      match t.status with
      | Copying -> recopy t peer acts
      | Waiting when waiting_on -> rewait t acts
      | Waiting | Notifying | In_system -> acts
    else acts
  in
  (* A SpeNotiMsg we were forwarding on behalf of another node must still
     reach a holder of the subject's suffix (or be answered ourselves). *)
  let acts =
    match failed with
    | Some (Message.Spe_noti { origin; subject }) when not (Id.equal origin t.id) ->
      on_spe_noti t origin subject @ acts
    | Some _ | None -> acts
  in
  maybe_switch t ~now acts

let handle t ~now ~src msg =
  match msg with
  | Message.Cp_rst { level } ->
    [ { dst = src; msg = Message.Cp_rly { table = snap_cp_rly t ~level } } ]
  | Message.Cp_rly { table } -> on_cp_rly t ~src table
  | Message.Join_wait -> on_join_wait t ~src
  | Message.Join_wait_rly { sign; occupant; table } ->
    on_join_wait_rly t ~now ~src sign occupant table
  | Message.Join_noti { table; noti_level; filled } ->
    let acts, sign, flag = on_join_noti t ~src table in
    let reply =
      {
        dst = src;
        msg =
          Message.Join_noti_rly
            {
              sign;
              table = snap_join_noti_rly t ~sender_noti_level:noti_level ~sender_filled:filled;
              flag;
            };
      }
    in
    let acts = reply :: acts in
    check_ngh_table t table acts
  | Message.Join_noti_rly { sign; table; flag } ->
    on_join_noti_rly t ~now ~src sign table flag
  | Message.In_sys_noti -> on_in_sys_noti t ~src
  | Message.Spe_noti { origin; subject } -> on_spe_noti t origin subject
  | Message.Spe_noti_rly { origin = _; subject } -> on_spe_noti_rly t ~now subject
  | Message.Rv_ngh_noti { level; digit; recorded } ->
    on_rv_ngh_noti t ~src ~level ~digit recorded
  | Message.Rv_ngh_noti_rly { level; digit; state } ->
    on_rv_ngh_noti_rly t ~src ~level ~digit state
