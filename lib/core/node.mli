(** Join-protocol node state machine (paper, Section 4, Figures 3–14).

    Each node owns a neighbor table and a status. A joining node progresses
    through [Copying] (building its table level by level from copies),
    [Waiting] (asking a node to store it), [Notifying] (announcing itself to
    its notification set), and finally [In_system] (an S-node). Only nodes in
    the join process hold extra state — the burden of a join is on the joining
    node, which is the design point the paper argues against Tapestry's
    multicast join.

    Handlers are pure with respect to the network: they mutate only the node
    and return the messages to send, which makes the protocol testable without
    a simulator and keeps the simulator trivial. *)

type status = Copying | Waiting | Notifying | In_system

val status_equal : status -> status -> bool

val pp_status : status Fmt.t

type config = { params : Ntcu_id.Params.t; size_mode : Message.size_mode }

type action = { dst : Ntcu_id.Id.t; msg : Message.t }

type t

val create_seed : config -> Ntcu_id.Id.t -> t
(** A node of the initial consistent network: status [In_system], self-entries
    filled with state [S] (Section 6.1). Other entries are filled by the
    network seeding code. *)

val create_joiner : config -> Ntcu_id.Id.t -> t
(** A node about to join: status [Copying], empty table. *)

val id : t -> Ntcu_id.Id.t
val status : t -> status
val table : t -> Ntcu_table.Table.t
val stats : t -> Stats.t

val noti_level : t -> int
(** Meaningful once the node has reached [Notifying]. *)

val is_joiner : t -> bool
(** True if the node was created with {!create_joiner}. *)

val t_begin : t -> float option
(** Time the join began (the paper's [t^b_x]); [None] for seed nodes. *)

val t_end : t -> float option
(** Time the node became an S-node (the paper's [t^e_x]); [None] while still
    joining and for seed nodes. *)

val pending_replies : t -> int
(** [|Q_r| + |Q_sr|] — outstanding replies. [0] once [In_system]. *)

val queued_join_waits : t -> int
(** [|Q_j|] — deferred [JoinWaitMsg] senders. *)

val begin_join : t -> now:float -> gateway:Ntcu_id.Id.t -> action list
(** Start the join given a known node of the network (assumption (ii)).
    The node must be in status [Copying] and not have started yet. *)

val handle : t -> now:float -> src:Ntcu_id.Id.t -> Message.t -> action list
(** Process one delivered message. *)

(** {1 Failure suspicion}

    The paper assumes no failures during joins (assumption (iv)). The
    reliable transport reports a peer as suspect once its retry budget is
    exhausted; the node then scrubs the peer from its table (promoting
    backups into the holes), queues, and reverse sets, and — if the suspect
    was load-bearing for its own join — fails over: a [Copying] node resumes
    the copy walk at its best remaining contact, a [Waiting] node re-sends
    [JoinWaitMsg] to one, and a [Notifying] node re-routes in-flight
    [SpeNotiMsg]s. Suspects are remembered so stale snapshots cannot
    re-introduce them. *)

(** {1 Fault injection (tests only)}

    The schedule-exploration harness needs a known, schedule-dependent
    protocol bug to prove it can find one. Each [fault] removes one piece of
    bookkeeping the protocol needs only under particular interleavings, so
    an episode with the fault enabled is correct on most schedules and
    violates consistency or liveness on the rest. Never set outside tests. *)

type fault =
  | Drop_queued_join_waits
      (** [Switch_To_S_Node] discards the deferred [JoinWaitMsg] queue [Q_j]
          instead of answering it — only wrong when a [JoinWaitMsg] arrived
          during the sender's own join window. *)
  | Forget_negative_forward
      (** A negative [JoinWaitRlyMsg] does not re-target the named occupant —
          only wrong when two dependent joiners race for the same entry. *)

val set_fault : t -> fault option -> unit

val on_suspect :
  t -> now:float -> peer:Ntcu_id.Id.t -> failed:Message.t option -> action list
(** [on_suspect t ~now ~peer ~failed] reports [peer] as crashed. [failed] is
    the message whose delivery gave up, if the report comes from the
    transport ([None] when relayed by the online-repair dissemination).
    Idempotent per peer apart from per-message re-drives. *)

val is_suspect : t -> Ntcu_id.Id.t -> bool
val suspects : t -> Ntcu_id.Id.Set.t
