(** Binary wire format for protocol messages.

    The simulator passes messages in memory; this codec is what a production
    deployment would put on the wire, and it grounds the byte accounting of
    {!Message.size_bytes}: identifiers are bit-packed ([ceil(d log2 b / 8)]
    bytes), table snapshots are sparse cell lists, and the Section 6.2 bit
    vector is encoded as an actual [d*b]-bit map.

    The format is self-contained given the namespace parameters: one kind
    byte, then kind-specific fields, all little-endian. Decoding validates
    every field against the parameters and never trusts lengths from the
    wire beyond the buffer. *)

val encode : Ntcu_id.Params.t -> Message.t -> string

val decode : Ntcu_id.Params.t -> string -> (Message.t, string) result
(** Inverse of {!encode}: [decode p (encode p m)] returns [Ok m'] with [m']
    structurally equal to [m]. Malformed input yields [Error] with a
    diagnostic, never an exception. *)

val encoded_size : Ntcu_id.Params.t -> Message.t -> int
(** [String.length (encode p m)], without building the string. *)
