(** Binary wire format for protocol messages.

    The simulator passes messages in memory; this codec is what a production
    deployment would put on the wire, and it grounds the byte accounting of
    {!Message.size_bytes}: identifiers are bit-packed ([ceil(d log2 b / 8)]
    bytes), table snapshots are sparse cell lists, and the Section 6.2 bit
    vector is encoded as an actual [d*b]-bit map.

    The format is self-contained given the namespace parameters: one kind
    byte, then kind-specific fields, all little-endian. Decoding validates
    every field against the parameters and never trusts lengths from the
    wire beyond the buffer. *)

type context
(** Precomputed encoding parameters (digit width, identifier and bitmap byte
    counts) plus a reusable scratch buffer. Create one per node (or per
    stream) and reuse it: {!encode_ctx} then performs a single allocation per
    message — the result string — instead of re-deriving parameters and
    growing a fresh buffer each time. Not thread-safe: the scratch buffer is
    reused across calls. *)

val context : Ntcu_id.Params.t -> context

val encode_ctx : context -> Message.t -> string

val decode_ctx : context -> string -> (Message.t, string) result

val encoded_size_ctx : context -> Message.t -> int

val encode : Ntcu_id.Params.t -> Message.t -> string
(** [encode p m] is [encode_ctx (context p) m]; convenient for one-off use. *)

val decode : Ntcu_id.Params.t -> string -> (Message.t, string) result
(** Inverse of {!encode}: [decode p (encode p m)] returns [Ok m'] with [m']
    structurally equal to [m]. Malformed input yields [Error] with a
    diagnostic, never an exception. *)

val encoded_size : Ntcu_id.Params.t -> Message.t -> int
(** [String.length (encode p m)], without building the string. *)

(** {1 Batch-frame primitives}

    Building blocks for streams of many small frames over one buffer — the
    sharded engine batches cross-shard deliveries through these, so its
    traffic is byte-accounted in the same wire format as single messages.
    Only packable parameter spaces ({!Ntcu_id.Packed.packable}) are
    supported for raw ids. *)

exception Malformed of string
(** Raised by the [get_*] primitives below on truncated or invalid input
    (the message-level {!decode} API still returns a [result]). *)

type writer = Buffer.t

type reader

val reader : string -> reader
val reader_at_end : reader -> bool

val put_raw_id : writer -> context -> int -> unit
(** Write a packed identifier value ([(Packed.of_id l id :> int)]) as the
    identifier's standard wire image — [idb] little-endian bytes, identical
    to what the message codec emits for the same identifier. *)

val get_raw_id : reader -> context -> int
(** Read back a packed identifier value; padding bits are masked. Digit-range
    validation (non-power-of-two bases) is the caller's, via
    {!Ntcu_id.Packed.of_int}. *)

val put_uvarint : writer -> int -> unit
(** LEB128 unsigned varint. @raise Invalid_argument on negative input. *)

val get_uvarint : reader -> int
