module Id = Ntcu_id.Id
module Table = Ntcu_table.Table
module Engine = Ntcu_sim.Engine
module Latency = Ntcu_sim.Latency

type reliability = {
  rto : float;
  backoff : float;
  jitter : float;
  max_retries : int;
  seed : int;
}

let default_reliability = { rto = 10.; backoff = 2.; jitter = 0.5; max_retries = 8; seed = 7 }

(* An unacked copy of a protocol message, keyed by its sequence number. *)
type pending = {
  p_src : Id.t;
  p_dst : Id.t;
  p_msg : Message.t;
  p_bytes : int; (* modeled wire size, computed once at first send *)
  mutable attempt : int;
  mutable timer : Engine.handle option;
}

(* One frame on the simulated wire, as seen by the scheduler hook: a protocol
   message, or a transport-level ack (which carries no Message.t). *)
type wire = Protocol of Message.t | Ack

type t = {
  params : Ntcu_id.Params.t;
  node_config : Node.config;
  fault : Node.fault option; (* test-only protocol bug, applied to every node *)
  engine : Engine.t;
  latency : Latency.t;
  nodes : Node.t Id.Tbl.t;
  host_of : int Id.Tbl.t; (* dense host index for the latency model *)
  mutable next_host : int;
  mutable order : Id.t list; (* registration order, newest first *)
  global : Stats.t;
  trace : Ntcu_sim.Trace.t option;
  mutable delivered : int;
  failed : unit Id.Tbl.t;
  (* Departure telemetry: the two ways a node can go away. [remove] is the
     graceful path (leave protocols repair first, then unregister); [fail] is
     the crash path (the node stays registered but dead until repair scrubs
     it and a reaper removes it). Steady-state churn drivers read these to
     report leave-vs-crash mixes without instrumenting every call site. *)
  mutable removed_count : int;
  mutable failed_count : int;
  mutable dropped : int;
  loss : (float * Ntcu_std.Rng.t) option;
  mutable lost : int;
  (* Ack/retransmit transport (None = the paper's reliable-delivery
     assumption is modeled by simply not losing messages). *)
  rel : (reliability * Ntcu_std.Rng.t) option;
  mutable next_seq : int;
  pending : (int, pending) Hashtbl.t;
  seen : (int, unit) Hashtbl.t; (* receiver-side duplicate suppression *)
  suspected : unit Id.Tbl.t;
  mutable suspicion_handler : (reporter:Id.t -> suspect:Id.t -> unit) option;
  mutable acks_sent : int;
  mutable acks_lost : int;
  (* Adversarial-scheduler hook: rewrites the sampled delay of each frame put
     on the wire. [wire_seq] numbers the hook's calls, giving schedulers a
     stable, deterministic key per scheduling decision (replayable repros). *)
  mutable delay_hook : (wire:wire -> src:Id.t -> dst:Id.t -> seq:int -> float -> float) option;
  mutable wire_seq : int;
}

let create ?latency ?(size_mode = Message.Full) ?(record_trace = false) ?loss ?reliability
    ?fault params =
  let latency = match latency with Some l -> l | None -> Latency.constant 1.0 in
  let loss =
    match loss with
    | None -> None
    | Some (probability, _) when probability <= 0. -> None
    | Some (probability, seed) ->
      if probability >= 1. then invalid_arg "Network.create: loss probability must be < 1";
      Some (probability, Ntcu_std.Rng.create seed)
  in
  let rel =
    match reliability with
    | None -> None
    | Some r ->
      if r.rto <= 0. then invalid_arg "Network.create: rto must be positive";
      if r.backoff < 1. then invalid_arg "Network.create: backoff must be >= 1";
      if r.jitter < 0. then invalid_arg "Network.create: jitter must be >= 0";
      if r.max_retries < 0 then invalid_arg "Network.create: max_retries must be >= 0";
      Some (r, Ntcu_std.Rng.create r.seed)
  in
  {
    params;
    node_config = { Node.params; size_mode };
    fault;
    engine = Engine.create ();
    latency;
    nodes = Id.Tbl.create 1024;
    host_of = Id.Tbl.create 1024;
    next_host = 0;
    order = [];
    global = Stats.create ();
    trace = (if record_trace then Some (Ntcu_sim.Trace.create ()) else None);
    delivered = 0;
    failed = Id.Tbl.create 16;
    removed_count = 0;
    failed_count = 0;
    dropped = 0;
    loss;
    lost = 0;
    rel;
    next_seq = 0;
    pending = Hashtbl.create 256;
    seen = Hashtbl.create 4096;
    suspected = Id.Tbl.create 16;
    suspicion_handler = None;
    acks_sent = 0;
    acks_lost = 0;
    delay_hook = None;
    wire_seq = 0;
  }

let params t = t.params
let engine t = t.engine
let trace t = t.trace
let reliable t = Option.is_some t.rel

let set_suspicion_handler t f = t.suspicion_handler <- Some f

let is_suspected t id = Id.Tbl.mem t.suspected id

let register t node =
  let id = Node.id node in
  if Id.Tbl.mem t.nodes id then
    invalid_arg (Fmt.str "Network: node %a already registered" Id.pp id);
  Id.Tbl.add t.nodes id node;
  Id.Tbl.add t.host_of id t.next_host;
  t.next_host <- t.next_host + 1;
  t.order <- id :: t.order

let node t id = Id.Tbl.find_opt t.nodes id

let node_exn t id =
  match node t id with
  | Some n -> n
  | None -> invalid_arg (Fmt.str "Network: unknown node %a" Id.pp id)

let host t id = Id.Tbl.find t.host_of id

let is_failed t id = Id.Tbl.mem t.failed id

let draw_loss t =
  match t.loss with
  | Some (probability, rng) -> Ntcu_std.Rng.float rng 1.0 < probability
  | None -> false

let delay_between t ~src ~dst =
  let delay = Latency.sample t.latency ~src:(host t src) ~dst:(host t dst) in
  if delay <= 0. then Latency.min_delay else delay

let set_delay_hook t hook = t.delay_hook <- hook

(* Delay for one frame actually scheduled on the wire. The hook is consulted
   (and [wire_seq] advanced) only for scheduled frames, so a run replayed with
   identical seeds consults it in an identical sequence. *)
let wire_delay t ~wire ~src ~dst =
  let delay = delay_between t ~src ~dst in
  match t.delay_hook with
  | None -> delay
  | Some f ->
    let seq = t.wire_seq in
    t.wire_seq <- seq + 1;
    let d = f ~wire ~src ~dst ~seq delay in
    if d <= 0. then Latency.min_delay else d

let rec send t ~src ~dst msg =
  if Id.equal src dst then
    invalid_arg (Fmt.str "Network.send: %a sending %a to itself" Id.pp src Message.pp msg);
  (* The modeled wire size walks the embedded snapshot; compute it once and
     share it with every counter on the path (sender, receiver, global). *)
  let bytes = Message.size_bytes t.params msg in
  Stats.record_sent (Node.stats (node_exn t src)) msg ~bytes;
  Stats.record_sent t.global msg ~bytes;
  match t.rel with
  | None ->
    if draw_loss t then t.lost <- t.lost + 1
    else
      Engine.schedule t.engine ~delay:(wire_delay t ~wire:(Protocol msg) ~src ~dst)
        (fun () -> deliver t ~src ~dst ~bytes msg)
  | Some _ ->
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let p =
      { p_src = src; p_dst = dst; p_msg = msg; p_bytes = bytes; attempt = 0; timer = None }
    in
    Hashtbl.replace t.pending seq p;
    transmit t seq p

(* Put one copy of pending message [seq] on the wire and arm its
   retransmission timer. *)
and transmit t seq p =
  let r, rng = match t.rel with Some x -> x | None -> assert false in
  if draw_loss t then t.lost <- t.lost + 1
  else
    Engine.schedule t.engine
      ~delay:(wire_delay t ~wire:(Protocol p.p_msg) ~src:p.p_src ~dst:p.p_dst)
      (fun () -> deliver_reliable t seq p);
  let timeout =
    r.rto
    *. (r.backoff ** float_of_int p.attempt)
    *. (1. +. (r.jitter *. Ntcu_std.Rng.float rng 1.0))
  in
  p.timer <- Some (Engine.schedule_cancellable t.engine ~delay:timeout (fun () ->
      on_timeout t seq))

and deliver_reliable t seq p =
  match Id.Tbl.find_opt t.nodes p.p_dst with
  | None -> t.dropped <- t.dropped + 1 (* departed: no ack, the timer will fire *)
  | Some _ when Id.Tbl.mem t.failed p.p_dst -> t.dropped <- t.dropped + 1
  | Some receiver ->
    (* Ack first (a transport frame, not a Message.t — it carries only the
       sequence number and is never itself acked), then deliver unless this
       copy is a duplicate of one already processed. *)
    t.acks_sent <- t.acks_sent + 1;
    if draw_loss t then t.acks_lost <- t.acks_lost + 1
    else
      Engine.schedule t.engine
        ~delay:(wire_delay t ~wire:Ack ~src:p.p_dst ~dst:p.p_src)
        (fun () -> on_ack t seq);
    if Hashtbl.mem t.seen seq then begin
      Stats.record_duplicate (Node.stats receiver);
      Stats.record_duplicate t.global
    end
    else begin
      Hashtbl.replace t.seen seq ();
      deliver_live t ~src:p.p_src ~dst:p.p_dst ~bytes:p.p_bytes receiver p.p_msg
    end

and on_ack t seq =
  match Hashtbl.find_opt t.pending seq with
  | None -> () (* already acked *)
  | Some p ->
    (match p.timer with Some h -> Engine.cancel t.engine h | None -> ());
    Hashtbl.remove t.pending seq

and on_timeout t seq =
  match Hashtbl.find_opt t.pending seq with
  | None -> () (* acked after this timer was armed but before it fired *)
  | Some p ->
    let r, _ = match t.rel with Some x -> x | None -> assert false in
    (match node t p.p_src with
    | Some sender when not (is_failed t p.p_src) ->
      Stats.record_timeout (Node.stats sender);
      Stats.record_timeout t.global;
      if p.attempt < r.max_retries then begin
        p.attempt <- p.attempt + 1;
        Stats.record_retransmission (Node.stats sender);
        Stats.record_retransmission t.global;
        transmit t seq p
      end
      else begin
        (* Retry budget exhausted: give up on this copy and suspect the
           peer. The network-level hook (Online_repair) disseminates the
           suspicion FIRST so it can observe every table — including the
           reporter's — before any scrub empties the suspect's entries (it
           refills the holes it saw). The reporter's own failover then runs
           with [failed] to re-route the abandoned message. *)
        Hashtbl.remove t.pending seq;
        Stats.record_failover (Node.stats sender);
        Stats.record_failover t.global;
        let first_report = not (Id.Tbl.mem t.suspected p.p_dst) in
        Id.Tbl.replace t.suspected p.p_dst ();
        (if first_report then
           match t.suspicion_handler with
           | Some f -> f ~reporter:p.p_src ~suspect:p.p_dst
           | None -> ());
        let actions =
          Node.on_suspect sender ~now:(Engine.now t.engine) ~peer:p.p_dst
            ~failed:(Some p.p_msg)
        in
        List.iter (fun { Node.dst = d; msg = m } -> send t ~src:p.p_src ~dst:d m) actions
      end
    | Some _ | None ->
      (* The sender itself crashed or departed; nobody is waiting. *)
      Hashtbl.remove t.pending seq)

and deliver t ~src ~dst ~bytes msg =
  match Id.Tbl.find_opt t.nodes dst with
  | None ->
    (* Destination departed while the message was in flight. *)
    t.dropped <- t.dropped + 1
  | Some _ when Id.Tbl.mem t.failed dst -> t.dropped <- t.dropped + 1
  | Some receiver -> deliver_live t ~src ~dst ~bytes receiver msg

and deliver_live t ~src ~dst ~bytes receiver msg =
  t.delivered <- t.delivered + 1;
  Stats.record_received (Node.stats receiver) msg ~bytes;
  Stats.record_received t.global msg ~bytes;
  (match t.trace with
  | Some tr ->
    Ntcu_sim.Trace.record tr (Engine.now t.engine)
      (Fmt.str "%a -> %a : %a" Id.pp src Id.pp dst Message.pp msg)
  | None -> ());
  let actions = Node.handle receiver ~now:(Engine.now t.engine) ~src msg in
  List.iter (fun { Node.dst = d; msg = m } -> send t ~src:dst ~dst:d m) actions

let inject t ~src actions =
  List.iter (fun { Node.dst = d; msg = m } -> send t ~src ~dst:d m) actions

let add_seed_node t id =
  let node = Node.create_seed t.node_config id in
  Node.set_fault node t.fault;
  register t node

(* Map from suffix to the members carrying it, for consistent seeding. *)
let suffix_members ids =
  let members : (int array, Id.t list ref) Hashtbl.t = Hashtbl.create 4096 in
  List.iter
    (fun id ->
      for len = 1 to Id.length id do
        let suffix = Id.suffix id len in
        match Hashtbl.find_opt members suffix with
        | Some l -> l := id :: !l
        | None -> Hashtbl.add members suffix (ref [ id ])
      done)
    ids;
  members

let seed_consistent t ~seed ids =
  if List.is_empty ids then invalid_arg "Network.seed_consistent: empty node list";
  let rng = Ntcu_std.Rng.create seed in
  List.iter (fun id -> add_seed_node t id) ids;
  let members = suffix_members ids in
  (* Freeze each member list into an array once: [candidates_of] runs for
     every (node, level, digit) cell, and re-materializing the big
     short-suffix lists there dominated seeding time. *)
  let frozen : (int array, Id.t array) Hashtbl.t =
    Hashtbl.create (Hashtbl.length members)
  in
  (* Key-by-key copy into another table: iteration order cannot be observed
     because [frozen] is only read back through [Hashtbl.find_opt]. *)
  (Hashtbl.iter [@ntcu.allow "D002"])
    (fun suffix l -> Hashtbl.add frozen suffix (Array.of_list !l))
    members;
  let candidates_of suffix =
    match Hashtbl.find_opt frozen suffix with
    | Some a -> a
    | None -> [||]
  in
  List.iter
    (fun id ->
      let n = node_exn t id in
      let table = Node.table n in
      for level = 0 to t.params.d - 1 do
        for digit = 0 to t.params.b - 1 do
          if digit <> Id.digit id level then begin
            let suffix = Table.required_suffix table ~level ~digit in
            let cands = candidates_of suffix in
            if Array.length cands > 0 then begin
              let chosen = Ntcu_std.Rng.pick rng cands in
              Table.set table ~level ~digit chosen S;
              (* Register the storer as a reverse neighbor of the chosen
                 node, as the protocol's RvNghNotiMsg traffic would have. *)
              let chosen_table = Node.table (node_exn t chosen) in
              Table.add_reverse chosen_table ~level ~digit id
            end
          end
        done
      done)
    ids

let start_join t ?at ~id ~gateway () =
  if Id.Tbl.mem t.nodes id then
    invalid_arg (Fmt.str "Network.start_join: %a already present" Id.pp id);
  ignore (node_exn t gateway);
  let joiner = Node.create_joiner t.node_config id in
  Node.set_fault joiner t.fault;
  register t joiner;
  let time = match at with Some time -> time | None -> Engine.now t.engine in
  Engine.schedule_at t.engine ~time (fun () ->
      let actions = Node.begin_join joiner ~now:(Engine.now t.engine) ~gateway in
      List.iter (fun { Node.dst = d; msg = m } -> send t ~src:id ~dst:d m) actions)

(* Bulk variant: same observable behavior as calling {!start_join} on each
   triple left to right (registration emits no events, and
   [Engine.schedule_batch] assigns the same tie-break sequence numbers as
   per-join pushes would), but the event population is heapified in O(n). *)
let start_joins t joins =
  let events =
    List.map
      (fun (at, id, gateway) ->
        if Id.Tbl.mem t.nodes id then
          invalid_arg (Fmt.str "Network.start_joins: %a already present" Id.pp id);
        ignore (node_exn t gateway);
        let joiner = Node.create_joiner t.node_config id in
        Node.set_fault joiner t.fault;
        register t joiner;
        ( at,
          fun () ->
            let actions = Node.begin_join joiner ~now:(Engine.now t.engine) ~gateway in
            List.iter (fun { Node.dst = d; msg = m } -> send t ~src:id ~dst:d m) actions ))
      joins
  in
  Engine.schedule_batch t.engine events

let run ?max_events t = Engine.run ?max_events t.engine

let remove t id =
  if not (Id.Tbl.mem t.nodes id) then
    invalid_arg (Fmt.str "Network.remove: unknown node %a" Id.pp id);
  Id.Tbl.remove t.nodes id;
  Id.Tbl.remove t.failed id;
  t.removed_count <- t.removed_count + 1;
  (* The host index stays allocated: latency models may be keyed by it, and
     indices are never reused. *)
  t.order <- List.filter (fun other -> not (Id.equal other id)) t.order

let fail t id =
  if not (Id.Tbl.mem t.nodes id) then
    invalid_arg (Fmt.str "Network.fail: unknown node %a" Id.pp id);
  if Id.Tbl.mem t.failed id then
    invalid_arg (Fmt.str "Network.fail: %a already failed" Id.pp id);
  t.failed_count <- t.failed_count + 1;
  Id.Tbl.replace t.failed id ()

let removed_count t = t.removed_count
let failed_count t = t.failed_count

let messages_dropped t = t.dropped

let messages_lost t = t.lost

let acks_sent t = t.acks_sent
let acks_lost t = t.acks_lost

let size t = Id.Tbl.length t.nodes
let mem t id = Id.Tbl.mem t.nodes id
let ids t = List.rev t.order

let live_ids t = List.filter (fun id -> not (is_failed t id)) (ids t)

let failed_ids t = List.filter (is_failed t) (ids t)

let nodes t = List.map (fun id -> node_exn t id) (live_ids t)

let joiners t = List.filter Node.is_joiner (nodes t)

let tables t = List.map Node.table (nodes t)

let all_in_system t =
  List.for_all (fun n -> Node.status_equal (Node.status n) Node.In_system) (nodes t)

let stuck_joiners t =
  List.filter
    (fun n -> Node.is_joiner n && not (Node.status_equal (Node.status n) Node.In_system))
    (nodes t)

let is_quiescent t = Engine.pending t.engine = 0

let check_consistent ?limit t = Ntcu_table.Check.violations ?limit (tables t)

let global_stats t = t.global

let messages_delivered t = t.delivered
