module Id = Ntcu_id.Id
module Table = Ntcu_table.Table
module Engine = Ntcu_sim.Engine
module Latency = Ntcu_sim.Latency

type t = {
  params : Ntcu_id.Params.t;
  node_config : Node.config;
  engine : Engine.t;
  latency : Latency.t;
  nodes : Node.t Id.Tbl.t;
  host_of : int Id.Tbl.t; (* dense host index for the latency model *)
  mutable next_host : int;
  mutable order : Id.t list; (* registration order, newest first *)
  global : Stats.t;
  trace : Ntcu_sim.Trace.t option;
  mutable delivered : int;
  failed : unit Id.Tbl.t;
  mutable dropped : int;
  loss : (float * Ntcu_std.Rng.t) option;
  mutable lost : int;
}

let create ?latency ?(size_mode = Message.Full) ?(record_trace = false) ?loss params =
  let latency = match latency with Some l -> l | None -> Latency.constant 1.0 in
  let loss =
    match loss with
    | None -> None
    | Some (probability, _) when probability <= 0. -> None
    | Some (probability, seed) ->
      if probability >= 1. then invalid_arg "Network.create: loss probability must be < 1";
      Some (probability, Ntcu_std.Rng.create seed)
  in
  {
    params;
    node_config = { Node.params; size_mode };
    engine = Engine.create ();
    latency;
    nodes = Id.Tbl.create 1024;
    host_of = Id.Tbl.create 1024;
    next_host = 0;
    order = [];
    global = Stats.create ();
    trace = (if record_trace then Some (Ntcu_sim.Trace.create ()) else None);
    delivered = 0;
    failed = Id.Tbl.create 16;
    dropped = 0;
    loss;
    lost = 0;
  }

let params t = t.params
let engine t = t.engine
let trace t = t.trace

let register t node =
  let id = Node.id node in
  if Id.Tbl.mem t.nodes id then
    invalid_arg (Fmt.str "Network: node %a already registered" Id.pp id);
  Id.Tbl.add t.nodes id node;
  Id.Tbl.add t.host_of id t.next_host;
  t.next_host <- t.next_host + 1;
  t.order <- id :: t.order

let node t id = Id.Tbl.find_opt t.nodes id

let node_exn t id =
  match node t id with
  | Some n -> n
  | None -> invalid_arg (Fmt.str "Network: unknown node %a" Id.pp id)

let host t id = Id.Tbl.find t.host_of id

let rec send t ~src ~dst msg =
  if Id.equal src dst then
    invalid_arg (Fmt.str "Network.send: %a sending %a to itself" Id.pp src Message.pp msg);
  Stats.record_sent (Node.stats (node_exn t src)) t.params msg;
  Stats.record_sent t.global t.params msg;
  let in_transit_loss =
    match t.loss with
    | Some (probability, rng) -> Ntcu_std.Rng.float rng 1.0 < probability
    | None -> false
  in
  if in_transit_loss then t.lost <- t.lost + 1
  else begin
    let delay = Latency.sample t.latency ~src:(host t src) ~dst:(host t dst) in
    let delay = if delay <= 0. then 1e-6 else delay in
    Engine.schedule t.engine ~delay (fun () -> deliver t ~src ~dst msg)
  end

and deliver t ~src ~dst msg =
  match Id.Tbl.find_opt t.nodes dst with
  | None ->
    (* Destination departed while the message was in flight. *)
    t.dropped <- t.dropped + 1
  | Some _ when Id.Tbl.mem t.failed dst -> t.dropped <- t.dropped + 1
  | Some receiver -> deliver_live t ~src ~dst receiver msg

and deliver_live t ~src ~dst receiver msg =
  t.delivered <- t.delivered + 1;
  Stats.record_received (Node.stats receiver) t.params msg;
  Stats.record_received t.global t.params msg;
  (match t.trace with
  | Some tr ->
    Ntcu_sim.Trace.record tr (Engine.now t.engine)
      (Fmt.str "%a -> %a : %a" Id.pp src Id.pp dst Message.pp msg)
  | None -> ());
  let actions = Node.handle receiver ~now:(Engine.now t.engine) ~src msg in
  List.iter (fun { Node.dst = d; msg = m } -> send t ~src:dst ~dst:d m) actions

let add_seed_node t id = register t (Node.create_seed t.node_config id)

(* Map from suffix to the members carrying it, for consistent seeding. *)
let suffix_members ids =
  let members : (int array, Id.t list ref) Hashtbl.t = Hashtbl.create 4096 in
  List.iter
    (fun id ->
      for len = 1 to Id.length id do
        let suffix = Id.suffix id len in
        match Hashtbl.find_opt members suffix with
        | Some l -> l := id :: !l
        | None -> Hashtbl.add members suffix (ref [ id ])
      done)
    ids;
  members

let seed_consistent t ~seed ids =
  if ids = [] then invalid_arg "Network.seed_consistent: empty node list";
  let rng = Ntcu_std.Rng.create seed in
  List.iter (fun id -> add_seed_node t id) ids;
  let members = suffix_members ids in
  let candidates_of suffix =
    match Hashtbl.find_opt members suffix with
    | Some l -> Array.of_list !l
    | None -> [||]
  in
  List.iter
    (fun id ->
      let n = node_exn t id in
      let table = Node.table n in
      for level = 0 to t.params.d - 1 do
        for digit = 0 to t.params.b - 1 do
          if digit <> Id.digit id level then begin
            let suffix = Table.required_suffix table ~level ~digit in
            let cands = candidates_of suffix in
            if Array.length cands > 0 then begin
              let chosen = Ntcu_std.Rng.pick rng cands in
              Table.set table ~level ~digit chosen S;
              (* Register the storer as a reverse neighbor of the chosen
                 node, as the protocol's RvNghNotiMsg traffic would have. *)
              let chosen_table = Node.table (node_exn t chosen) in
              Table.add_reverse chosen_table ~level ~digit id
            end
          end
        done
      done)
    ids

let start_join t ?at ~id ~gateway () =
  if Id.Tbl.mem t.nodes id then
    invalid_arg (Fmt.str "Network.start_join: %a already present" Id.pp id);
  ignore (node_exn t gateway);
  let joiner = Node.create_joiner t.node_config id in
  register t joiner;
  let time = match at with Some time -> time | None -> Engine.now t.engine in
  Engine.schedule_at t.engine ~time (fun () ->
      let actions = Node.begin_join joiner ~now:(Engine.now t.engine) ~gateway in
      List.iter (fun { Node.dst = d; msg = m } -> send t ~src:id ~dst:d m) actions)

let run ?max_events t = Engine.run ?max_events t.engine

let remove t id =
  if not (Id.Tbl.mem t.nodes id) then
    invalid_arg (Fmt.str "Network.remove: unknown node %a" Id.pp id);
  Id.Tbl.remove t.nodes id;
  Id.Tbl.remove t.failed id;
  (* The host index stays allocated: latency models may be keyed by it, and
     indices are never reused. *)
  t.order <- List.filter (fun other -> not (Id.equal other id)) t.order

let fail t id =
  if not (Id.Tbl.mem t.nodes id) then
    invalid_arg (Fmt.str "Network.fail: unknown node %a" Id.pp id);
  if Id.Tbl.mem t.failed id then
    invalid_arg (Fmt.str "Network.fail: %a already failed" Id.pp id);
  Id.Tbl.replace t.failed id ()

let is_failed t id = Id.Tbl.mem t.failed id

let messages_dropped t = t.dropped

let messages_lost t = t.lost

let size t = Id.Tbl.length t.nodes
let mem t id = Id.Tbl.mem t.nodes id
let ids t = List.rev t.order

let live_ids t = List.filter (fun id -> not (is_failed t id)) (ids t)

let nodes t = List.map (fun id -> node_exn t id) (live_ids t)

let joiners t = List.filter Node.is_joiner (nodes t)

let tables t = List.map Node.table (nodes t)

let all_in_system t = List.for_all (fun n -> Node.status n = Node.In_system) (nodes t)

let stuck_joiners t =
  List.filter
    (fun n -> Node.is_joiner n && Node.status n <> Node.In_system)
    (nodes t)

let is_quiescent t = Engine.pending t.engine = 0

let check_consistent t = Ntcu_table.Check.violations (tables t)

let global_stats t = t.global

let messages_delivered t = t.delivered
