(** Per-node protocol statistics.

    Figure 15 measures the number of [JoinNotiMsg] sent by each joining node;
    Theorem 3 bounds [CpRstMsg + JoinWaitMsg]. We count every message type in
    both directions, plus modeled bytes. *)

type t

val create : unit -> t

val record_sent : t -> Ntcu_id.Params.t -> Message.t -> unit
val record_received : t -> Ntcu_id.Params.t -> Message.t -> unit

val sent : t -> Message.kind -> int
val received : t -> Message.kind -> int
val total_sent : t -> int
val total_received : t -> int
val bytes_sent : t -> int
val bytes_received : t -> int

val copy_and_wait_sent : t -> int
(** [CpRstMsg + JoinWaitMsg] sent — the Theorem 3 quantity. *)

val join_noti_sent : t -> int
(** The Figure 15 / Theorems 4–5 quantity [J]. *)

val add : t -> t -> t
(** Pointwise sum (aggregation across nodes). *)

val pp : t Fmt.t
