(** Per-node protocol statistics.

    Figure 15 measures the number of [JoinNotiMsg] sent by each joining node;
    Theorem 3 bounds [CpRstMsg + JoinWaitMsg]. We count every message type in
    both directions, plus modeled bytes. *)

type t

val create : unit -> t

val record_sent : t -> Message.t -> bytes:int -> unit
val record_received : t -> Message.t -> bytes:int -> unit
(** [bytes] is the modeled wire size ({!Message.size_bytes}); the caller
    computes it once per message so the delivery hot path does not walk the
    embedded table snapshot for every counter it feeds. *)

(** {1 Reliability-layer counters}

    The reliable transport (ack/retransmit in {!Network}) records its extra
    work here. [record_sent] is called once per protocol message — the first
    send — so the per-kind counts and byte totals feeding the Theorem 3–5
    comparisons are unchanged by retransmission. *)

val record_retransmission : t -> unit
val record_timeout : t -> unit
val record_failover : t -> unit
val record_duplicate : t -> unit

val retransmissions : t -> int
val timeouts_fired : t -> int
val failovers : t -> int
val duplicates_suppressed : t -> int

val first_sends : t -> int
(** Protocol messages sent once each — equals {!total_sent}. *)

val total_sends : t -> int
(** [first_sends + retransmissions]: every copy the transport put on the
    wire. *)

val sent : t -> Message.kind -> int
val received : t -> Message.kind -> int
val total_sent : t -> int
val total_received : t -> int
val bytes_sent : t -> int
val bytes_received : t -> int

val copy_and_wait_sent : t -> int
(** [CpRstMsg + JoinWaitMsg] sent — the Theorem 3 quantity. *)

val join_noti_sent : t -> int
(** The Figure 15 / Theorems 4–5 quantity [J]. *)

(** {1 Time-windowed counters}

    Steady-state drivers sample periodically and want per-window rates, not
    lifetime totals. A [window] is an immutable snapshot of the counters;
    {!since} returns the deltas accumulated after it was taken. *)

type window = {
  w_sent : int;  (** protocol messages sent (first sends) *)
  w_received : int;
  w_bytes_sent : int;
  w_bytes_received : int;
  w_retransmissions : int;
  w_timeouts : int;
  w_failovers : int;
  w_duplicates : int;
}

val window : t -> window
(** Snapshot of the current totals. *)

val since : t -> window -> window
(** Counter deltas accumulated since the snapshot was taken. *)

val add : t -> t -> t
(** Pointwise sum (aggregation across nodes). *)

val pp : t Fmt.t
