module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Table = Ntcu_table.Table
module Snapshot = Table.Snapshot

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

module Packed = Ntcu_id.Packed

(* Everything the codec derives from the namespace parameters, computed once,
   plus a reusable scratch buffer: a node encoding a stream of messages does
   not re-derive digit widths per identifier nor allocate a fresh buffer per
   message. *)
type context = {
  p : Params.t;
  bpd : int; (* bits per digit *)
  idb : int; (* bytes per packed identifier *)
  bmb : int; (* bytes per d*b bitmap *)
  lay : Packed.layout option; (* present iff the id space fits one tagged int *)
  scratch : Buffer.t;
}

let context (p : Params.t) =
  let bpd = Packed.bits_per_digit p.b in
  {
    p;
    bpd;
    idb = ((p.d * bpd) + 7) / 8;
    bmb = ((p.d * p.b) + 7) / 8;
    lay = (if Packed.packable p then Some (Packed.layout p) else None);
    scratch = Buffer.create 256;
  }

(* ---- writer ---- *)

type writer = Buffer.t

let u8 (w : writer) v =
  assert (v >= 0 && v < 256);
  Buffer.add_char w (Char.chr v)

let u16 (w : writer) v =
  assert (v >= 0 && v < 65536);
  u8 w (v land 0xff);
  u8 w (v lsr 8)

(* A packable id's wire image is exactly its packed value, little-endian:
   both lay digit i at bits [i*bpd, (i+1)*bpd). *)
let put_raw_id (w : writer) c v =
  let v = ref v in
  for _ = 1 to c.idb do
    Buffer.add_char w (Char.unsafe_chr (!v land 0xff));
    v := !v lsr 8
  done

(* Digits packed LSB-first: digit i occupies bits [i*bpd, (i+1)*bpd). The
   packed fast path emits the same bytes with one shift/or per digit and one
   store per byte instead of the bit-accumulator loop. *)
let put_id (w : writer) c id =
  match c.lay with
  | Some l -> put_raw_id w c (Packed.of_id l id :> int)
  | None ->
    let bpd = c.bpd in
    let acc = ref 0 and nbits = ref 0 in
    for i = 0 to c.p.d - 1 do
      acc := !acc lor (Id.digit id i lsl !nbits);
      nbits := !nbits + bpd;
      while !nbits >= 8 do
        u8 w (!acc land 0xff);
        acc := !acc lsr 8;
        nbits := !nbits - 8
      done
    done;
    if !nbits > 0 then u8 w (!acc land 0xff)

let put_state (w : writer) (s : Table.nstate) = u8 w (match s with T -> 0 | S -> 1)

let put_sign (w : writer) (s : Message.sign) =
  u8 w (match s with Negative -> 0 | Positive -> 1)

let put_snapshot (w : writer) c (snap : Snapshot.t) =
  put_id w c snap.owner;
  u16 w (Snapshot.cell_count snap);
  Snapshot.iter snap (fun cell ->
      u8 w cell.level;
      u8 w cell.digit;
      put_state w cell.state;
      put_id w c cell.node)

let put_bitmap (w : writer) c positions =
  let bytes = Bytes.make c.bmb '\000' in
  List.iter
    (fun (level, digit) ->
      if level < 0 || level >= c.p.d || digit < 0 || digit >= c.p.b then
        invalid_arg "Codec: bitmap position out of range";
      let bit = (level * c.p.b) + digit in
      let i = bit / 8 and off = bit mod 8 in
      Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lor (1 lsl off))))
    positions;
  Buffer.add_bytes w bytes

(* ---- reader ---- *)

type reader = { data : string; mutable pos : int }

let need r n =
  if r.pos + n > String.length r.data then
    malformed "truncated message: need %d bytes at offset %d of %d" n r.pos
      (String.length r.data)

let g8 r =
  need r 1;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let g16 r =
  let lo = g8 r in
  let hi = g8 r in
  lo lor (hi lsl 8)

let get_id r c =
  let bpd = c.bpd in
  let nbytes = c.idb in
  need r nbytes;
  let digits = Array.make c.p.d 0 in
  let acc = ref 0 and nbits = ref 0 and consumed = ref 0 in
  for i = 0 to c.p.d - 1 do
    while !nbits < bpd do
      acc := !acc lor (Char.code r.data.[r.pos + !consumed] lsl !nbits);
      incr consumed;
      nbits := !nbits + 8
    done;
    digits.(i) <- !acc land ((1 lsl bpd) - 1);
    acc := !acc lsr bpd;
    nbits := !nbits - bpd
  done;
  r.pos <- r.pos + nbytes;
  match Id.make c.p digits with
  | id -> id
  | exception Invalid_argument msg -> malformed "bad identifier: %s" msg

(* Inverse of [put_raw_id]: the packed value from [idb] little-endian bytes.
   Padding bits above [d*bpd] are masked off, matching [get_id]'s tolerance
   of nonzero padding; per-digit range validation (needed only for
   non-power-of-two bases) is the caller's via [Packed.of_int]. *)
let get_raw_id r c =
  need r c.idb;
  let v = ref 0 in
  for i = 0 to c.idb - 1 do
    v := !v lor (Char.code r.data.[r.pos + i] lsl (8 * i))
  done;
  r.pos <- r.pos + c.idb;
  let id_bits = c.p.d * c.bpd in
  if id_bits >= 8 * c.idb then !v else !v land ((1 lsl id_bits) - 1)

(* LEB128 unsigned varints, for the counts and deltas of cross-shard batch
   frames: 7 value bits per byte, high bit = continuation, at most 9 bytes
   (63 value bits) accepted. *)
let put_uvarint (w : writer) v =
  if v < 0 then invalid_arg "Codec.put_uvarint: negative";
  let v = ref v in
  while !v >= 0x80 do
    Buffer.add_char w (Char.unsafe_chr (!v land 0x7f lor 0x80));
    v := !v lsr 7
  done;
  Buffer.add_char w (Char.unsafe_chr !v)

let get_uvarint r =
  let v = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    let byte = g8 r in
    if !shift >= 63 then malformed "uvarint overflows 63 bits";
    v := !v lor ((byte land 0x7f) lsl !shift);
    shift := !shift + 7;
    if byte < 0x80 then continue := false
  done;
  !v

let get_state r : Table.nstate =
  match g8 r with 0 -> T | 1 -> S | v -> malformed "bad state byte %d" v

let get_sign r : Message.sign =
  match g8 r with 0 -> Negative | 1 -> Positive | v -> malformed "bad sign byte %d" v

let get_snapshot r c =
  let owner = get_id r c in
  let count = g16 r in
  let cells = ref [] in
  for _ = 1 to count do
    let level = g8 r in
    let digit = g8 r in
    let state = get_state r in
    let node = get_id r c in
    if level >= c.p.d || digit >= c.p.b then
      malformed "cell position (%d,%d) out of range" level digit;
    cells := { Snapshot.level; digit; state; node } :: !cells
  done;
  Snapshot.of_cells ~owner (List.rev !cells)

let get_bitmap r c =
  let nbytes = c.bmb in
  need r nbytes;
  let positions = ref [] in
  for bit = (c.p.d * c.p.b) - 1 downto 0 do
    let i = bit / 8 and off = bit mod 8 in
    if Char.code r.data.[r.pos + i] land (1 lsl off) <> 0 then
      positions := (bit / c.p.b, bit mod c.p.b) :: !positions
  done;
  r.pos <- r.pos + nbytes;
  !positions

(* ---- message framing ---- *)

let tag (m : Message.t) = Message.kind_index (Message.kind m)

let encode_ctx c (m : Message.t) =
  let w = c.scratch in
  Buffer.clear w;
  u8 w (tag m);
  (match m with
  | Cp_rst { level } -> u8 w level
  | Cp_rly { table } -> put_snapshot w c table
  | Join_wait -> ()
  | Join_wait_rly { sign; occupant; table } ->
    put_sign w sign;
    put_id w c occupant;
    put_snapshot w c table
  | Join_noti { table; noti_level; filled } ->
    u8 w noti_level;
    (match filled with
    | None -> u8 w 0
    | Some positions ->
      u8 w 1;
      put_bitmap w c positions);
    put_snapshot w c table
  | Join_noti_rly { sign; table; flag } ->
    put_sign w sign;
    u8 w (if flag then 1 else 0);
    put_snapshot w c table
  | In_sys_noti -> ()
  | Spe_noti { origin; subject } ->
    put_id w c origin;
    put_id w c subject
  | Spe_noti_rly { origin; subject } ->
    put_id w c origin;
    put_id w c subject
  | Rv_ngh_noti { level; digit; recorded } ->
    u8 w level;
    u8 w digit;
    put_state w recorded
  | Rv_ngh_noti_rly { level; digit; state } ->
    u8 w level;
    u8 w digit;
    put_state w state);
  Buffer.contents w

let decode_exn c data =
  let r = { data; pos = 0 } in
  let m : Message.t =
    match g8 r with
    | 0 ->
      let level = g8 r in
      if level >= c.p.Params.d then malformed "CpRst level %d out of range" level;
      Cp_rst { level }
    | 1 -> Cp_rly { table = get_snapshot r c }
    | 2 -> Join_wait
    | 3 ->
      let sign = get_sign r in
      let occupant = get_id r c in
      let table = get_snapshot r c in
      Join_wait_rly { sign; occupant; table }
    | 4 ->
      let noti_level = g8 r in
      if noti_level >= c.p.Params.d then malformed "noti_level %d out of range" noti_level;
      let filled =
        match g8 r with
        | 0 -> None
        | 1 -> Some (get_bitmap r c)
        | v -> malformed "bad bitmap flag %d" v
      in
      let table = get_snapshot r c in
      Join_noti { table; noti_level; filled }
    | 5 ->
      let sign = get_sign r in
      let flag = match g8 r with 0 -> false | 1 -> true | v -> malformed "bad flag %d" v in
      let table = get_snapshot r c in
      Join_noti_rly { sign; table; flag }
    | 6 -> In_sys_noti
    | 7 ->
      let origin = get_id r c in
      let subject = get_id r c in
      Spe_noti { origin; subject }
    | 8 ->
      let origin = get_id r c in
      let subject = get_id r c in
      Spe_noti_rly { origin; subject }
    | 9 ->
      let level = g8 r in
      let digit = g8 r in
      let recorded = get_state r in
      if level >= c.p.Params.d || digit >= c.p.Params.b then
        malformed "RvNghNoti position (%d,%d) out of range" level digit;
      Rv_ngh_noti { level; digit; recorded }
    | 10 ->
      let level = g8 r in
      let digit = g8 r in
      let state = get_state r in
      if level >= c.p.Params.d || digit >= c.p.Params.b then
        malformed "RvNghNotiRly position (%d,%d) out of range" level digit;
      Rv_ngh_noti_rly { level; digit; state }
    | t -> malformed "unknown message tag %d" t
  in
  if r.pos <> String.length data then
    malformed "trailing garbage: %d bytes" (String.length data - r.pos);
  m

let decode_ctx c data =
  match decode_exn c data with
  | m -> Ok m
  | exception Malformed msg -> Error msg

let snapshot_size c snap = c.idb + 2 + (Snapshot.cell_count snap * (3 + c.idb))

let encoded_size_ctx c (m : Message.t) =
  1
  +
  match m with
  | Cp_rst _ -> 1
  | Cp_rly { table } -> snapshot_size c table
  | Join_wait -> 0
  | Join_wait_rly { table; _ } -> 1 + c.idb + snapshot_size c table
  | Join_noti { table; filled; _ } ->
    2 + (match filled with None -> 0 | Some _ -> c.bmb) + snapshot_size c table
  | Join_noti_rly { table; _ } -> 2 + snapshot_size c table
  | In_sys_noti -> 0
  | Spe_noti _ | Spe_noti_rly _ -> 2 * c.idb
  | Rv_ngh_noti _ | Rv_ngh_noti_rly _ -> 3

let reader data = { data; pos = 0 }
let reader_at_end r = r.pos >= String.length r.data

(* ---- parameter-keyed convenience wrappers ---- *)

let encode p m = encode_ctx (context p) m

let decode p data = decode_ctx (context p) data

let encoded_size p m = encoded_size_ctx (context p) m
