type t = {
  sent : int array;
  received : int array;
  mutable bytes_sent : int;
  mutable bytes_received : int;
  (* Reliability-layer counters. [sent]/[received] count protocol messages
     once each (first sends), so the Theorem 3-5 quantities are unaffected by
     retransmission; the transport's extra work is tallied separately. *)
  mutable retransmissions : int;
  mutable timeouts_fired : int;
  mutable failovers : int;
  mutable duplicates_suppressed : int;
}

let create () =
  {
    sent = Array.make Message.kind_count 0;
    received = Array.make Message.kind_count 0;
    bytes_sent = 0;
    bytes_received = 0;
    retransmissions = 0;
    timeouts_fired = 0;
    failovers = 0;
    duplicates_suppressed = 0;
  }

let record_sent t m ~bytes =
  let i = Message.kind_index (Message.kind m) in
  t.sent.(i) <- t.sent.(i) + 1;
  t.bytes_sent <- t.bytes_sent + bytes

let record_received t m ~bytes =
  let i = Message.kind_index (Message.kind m) in
  t.received.(i) <- t.received.(i) + 1;
  t.bytes_received <- t.bytes_received + bytes

let record_retransmission t = t.retransmissions <- t.retransmissions + 1
let record_timeout t = t.timeouts_fired <- t.timeouts_fired + 1
let record_failover t = t.failovers <- t.failovers + 1
let record_duplicate t = t.duplicates_suppressed <- t.duplicates_suppressed + 1

let sent t k = t.sent.(Message.kind_index k)
let received t k = t.received.(Message.kind_index k)
let total_sent t = Array.fold_left ( + ) 0 t.sent
let total_received t = Array.fold_left ( + ) 0 t.received
let bytes_sent t = t.bytes_sent
let bytes_received t = t.bytes_received

let retransmissions t = t.retransmissions
let timeouts_fired t = t.timeouts_fired
let failovers t = t.failovers
let duplicates_suppressed t = t.duplicates_suppressed

let first_sends t = total_sent t
let total_sends t = total_sent t + t.retransmissions

let copy_and_wait_sent t = sent t Message.K_cp_rst + sent t Message.K_join_wait

let join_noti_sent t = sent t Message.K_join_noti

type window = {
  w_sent : int;
  w_received : int;
  w_bytes_sent : int;
  w_bytes_received : int;
  w_retransmissions : int;
  w_timeouts : int;
  w_failovers : int;
  w_duplicates : int;
}

let window t =
  {
    w_sent = total_sent t;
    w_received = total_received t;
    w_bytes_sent = t.bytes_sent;
    w_bytes_received = t.bytes_received;
    w_retransmissions = t.retransmissions;
    w_timeouts = t.timeouts_fired;
    w_failovers = t.failovers;
    w_duplicates = t.duplicates_suppressed;
  }

let since t w =
  let now = window t in
  {
    w_sent = now.w_sent - w.w_sent;
    w_received = now.w_received - w.w_received;
    w_bytes_sent = now.w_bytes_sent - w.w_bytes_sent;
    w_bytes_received = now.w_bytes_received - w.w_bytes_received;
    w_retransmissions = now.w_retransmissions - w.w_retransmissions;
    w_timeouts = now.w_timeouts - w.w_timeouts;
    w_failovers = now.w_failovers - w.w_failovers;
    w_duplicates = now.w_duplicates - w.w_duplicates;
  }

let add a b =
  {
    sent = Array.map2 ( + ) a.sent b.sent;
    received = Array.map2 ( + ) a.received b.received;
    bytes_sent = a.bytes_sent + b.bytes_sent;
    bytes_received = a.bytes_received + b.bytes_received;
    retransmissions = a.retransmissions + b.retransmissions;
    timeouts_fired = a.timeouts_fired + b.timeouts_fired;
    failovers = a.failovers + b.failovers;
    duplicates_suppressed = a.duplicates_suppressed + b.duplicates_suppressed;
  }

let all_kinds =
  [
    Message.K_cp_rst;
    Message.K_cp_rly;
    Message.K_join_wait;
    Message.K_join_wait_rly;
    Message.K_join_noti;
    Message.K_join_noti_rly;
    Message.K_in_sys_noti;
    Message.K_spe_noti;
    Message.K_spe_noti_rly;
    Message.K_rv_ngh_noti;
    Message.K_rv_ngh_noti_rly;
  ]

let pp ppf t =
  List.iter
    (fun k ->
      let s = sent t k and r = received t k in
      if s > 0 || r > 0 then Fmt.pf ppf "%-16s sent=%-6d recv=%-6d@." (Message.kind_name k) s r)
    all_kinds;
  Fmt.pf ppf "bytes: sent=%d recv=%d@." t.bytes_sent t.bytes_received;
  if t.retransmissions > 0 || t.timeouts_fired > 0 || t.failovers > 0
     || t.duplicates_suppressed > 0
  then
    Fmt.pf ppf
      "reliability: %d first sends, %d total sends (%d retransmissions), %d timeouts, %d \
       failovers, %d duplicates suppressed@."
      (first_sends t) (total_sends t) t.retransmissions t.timeouts_fired t.failovers
      t.duplicates_suppressed
